//! Physical-core and virtual-core state.
//!
//! The paper's consolidation mechanism (§III) splits the classical notion
//! of a core in two: **virtual cores** carry the architectural state the OS
//! sees (here: the workload thread and its blocking state), **physical
//! cores** are the execution resources that can be power-gated. The core
//! *mapper* assigns every virtual core to exactly one active physical core;
//! several virtual cores on one physical core are time-sliced by a hardware
//! (or OS) context switcher.
//!
//! The issue engine itself lives in [`crate::chip`] (it needs the whole
//! memory system); this module holds the state machines and the scheduling
//! decisions that are local to a core.

use respin_workloads::{Op, ThreadGen};
use serde::{Deserialize, Serialize};

/// Blocking state of a virtual core (thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VcState {
    /// Can issue instructions.
    Ready,
    /// Stalled until the given tick (idle ops, mispredicts, migration
    /// penalties, store-buffer back-pressure retries).
    StallUntil(u64),
    /// Waiting for an L1 read response (event-driven completion).
    WaitRead,
    /// Arrived at barrier `id`, waiting for release.
    AtBarrier(u32),
    /// Waiting to acquire lock `id`.
    WaitLock(u32),
    /// Stream exhausted.
    Finished,
}

/// A virtual core: one workload thread plus its micro-state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VirtualCore {
    /// The op stream.
    pub gen: ThreadGen,
    /// Blocking state.
    pub state: VcState,
    /// An op fetched but not yet issuable (e.g. store-buffer full).
    pub held: Option<Op>,
    /// Retired instructions.
    pub retired: u64,
}

impl VirtualCore {
    /// New virtual core over a thread stream.
    pub fn new(gen: ThreadGen) -> Self {
        Self {
            gen,
            state: VcState::Ready,
            held: None,
            retired: 0,
        }
    }

    /// True when this thread could issue at tick `now`.
    pub fn runnable(&self, now: u64) -> bool {
        match self.state {
            VcState::Ready => true,
            VcState::StallUntil(t) => now >= t,
            _ => false,
        }
    }

    /// Earliest tick at which this thread could issue, viewed from `now`.
    ///
    /// `None` for states that only an *event inside an executed tick* can
    /// resolve (read completions, barrier releases, lock hand-offs, end of
    /// stream): those never wake spontaneously, so they contribute no
    /// deadline to the fast path's next-wakeup computation — the event
    /// that frees them is bounded by some other component's deadline.
    pub fn wake_tick(&self, now: u64) -> Option<u64> {
        match self.state {
            VcState::Ready => Some(now),
            VcState::StallUntil(t) => Some(t.max(now)),
            _ => None,
        }
    }

    /// True when blocked on something another thread must resolve
    /// (worth context-switching away from immediately).
    pub fn blocked_on_sync(&self) -> bool {
        matches!(
            self.state,
            VcState::AtBarrier(_) | VcState::WaitLock(_) | VcState::Finished
        )
    }
}

/// A physical core.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Core {
    /// Clock period in ticks (4/5/6 at NT, 1 at nominal).
    pub mult: u64,
    /// Powered on?
    pub active: bool,
    /// Cluster-local ids of the virtual cores hosted here.
    pub assigned: Vec<usize>,
    /// Index into `assigned` of the currently running virtual core.
    pub current: usize,
    /// Core cycles left in the current time slice.
    pub slice_left: u64,
    /// The core cannot issue before this tick (context-switch or
    /// power-on overhead).
    pub stall_until: u64,
    /// In-flight stores occupying buffer slots. Slots free when the chip's
    /// deferred-event queue sees the store complete (the completion tick of
    /// a store through the shared controller is only known at service
    /// time).
    pub pending_stores: u32,
    /// Per-core leakage multiplier from process variation.
    pub leak_factor: f64,
    /// Transient faults observed on this core (fault injection).
    pub fault_count: u32,
    /// Decommissioned after crossing the fault threshold: permanently
    /// powered off and excluded from consolidation rankings.
    pub faulty: bool,
}

impl Core {
    /// New active core.
    pub fn new(mult: u64, leak_factor: f64) -> Self {
        Self {
            mult,
            active: true,
            assigned: Vec::new(),
            current: 0,
            slice_left: 0,
            stall_until: 0,
            pending_stores: 0,
            leak_factor,
            fault_count: 0,
            faulty: false,
        }
    }

    /// Whether the store buffer can accept another store.
    pub fn store_buffer_has_room(&self) -> bool {
        (self.pending_stores as usize) < crate::consts::STORE_BUFFER_DEPTH
    }

    /// First core-cycle boundary (`tick % mult == 0`) at or after
    /// `earliest`. Boundaries are chip-global: all cores of a cluster
    /// share phase 0, exactly as `Chip::step`'s
    /// `now.is_multiple_of(mult)` gate assumes.
    pub fn next_boundary(&self, earliest: u64) -> u64 {
        earliest.div_ceil(self.mult) * self.mult
    }

    /// Number of core-cycle boundaries in the half-open tick range
    /// `[from, to)` — i.e. how many times the reference loop would have
    /// entered `exec_core_cycle` for this core over that window.
    pub fn boundaries_in(&self, from: u64, to: u64) -> u64 {
        let first = self.next_boundary(from);
        if first >= to {
            0
        } else {
            (to - 1 - first) / self.mult + 1
        }
    }

    /// Picks the next virtual core to run, if a switch is warranted.
    /// `runnable(i)` / `blocked(i)` describe `assigned[i]`; returns
    /// `Some(new_index)` when the core should switch.
    ///
    /// Switch policy: rotate when the slice is exhausted, or when the
    /// current thread is blocked (synchronisation, or a stall long enough
    /// to amortise the switch) and some other hosted thread is runnable.
    /// If no other thread is runnable, stay — switching to an equally
    /// blocked thread buys nothing.
    pub fn pick_switch_with(
        &self,
        runnable: impl Fn(usize) -> bool,
        blocked_or_long_stalled: impl Fn(usize) -> bool,
    ) -> Option<usize> {
        if self.assigned.len() < 2 {
            return None;
        }
        let cur = self.current;
        let slice_over = self.slice_left == 0;
        let cur_blocked = blocked_or_long_stalled(cur);
        if !slice_over && !cur_blocked {
            return None;
        }
        (1..self.assigned.len())
            .map(|off| (cur + off) % self.assigned.len())
            .find(|&i| runnable(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use respin_workloads::{Benchmark, ThreadGen};

    fn vc() -> VirtualCore {
        let mut spec = Benchmark::Fft.spec();
        spec.instructions_per_thread = 100;
        VirtualCore::new(ThreadGen::new(&spec, 0, 1))
    }

    #[test]
    fn runnable_states() {
        let mut v = vc();
        assert!(v.runnable(0));
        v.state = VcState::StallUntil(10);
        assert!(!v.runnable(9));
        assert!(v.runnable(10));
        v.state = VcState::AtBarrier(0);
        assert!(!v.runnable(100));
        assert!(v.blocked_on_sync());
        v.state = VcState::WaitRead;
        assert!(!v.runnable(100));
        assert!(!v.blocked_on_sync());
    }

    #[test]
    fn store_buffer_bounds() {
        let mut c = Core::new(4, 1.0);
        for _ in 0..crate::consts::STORE_BUFFER_DEPTH {
            assert!(c.store_buffer_has_room());
            c.pending_stores += 1;
        }
        assert!(!c.store_buffer_has_room());
        // A completion frees a slot.
        c.pending_stores -= 1;
        assert!(c.store_buffer_has_room());
    }

    #[test]
    fn switch_on_slice_expiry() {
        let mut c = Core::new(4, 1.0);
        c.assigned = vec![0, 1, 2];
        c.current = 0;
        c.slice_left = 0;
        let pick = c.pick_switch_with(|_| true, |_| false);
        assert_eq!(pick, Some(1));
    }

    #[test]
    fn switch_on_block_to_runnable_thread() {
        let mut c = Core::new(4, 1.0);
        c.assigned = vec![0, 1];
        c.current = 0;
        c.slice_left = 500;
        // Current blocked, other runnable → switch.
        let pick = c.pick_switch_with(|i| i == 1, |i| i == 0);
        assert_eq!(pick, Some(1));
        // Current blocked, other also blocked → stay.
        let pick = c.pick_switch_with(|_| false, |_| true);
        assert_eq!(pick, None);
        // Current running fine → stay.
        let pick = c.pick_switch_with(|_| true, |_| false);
        assert_eq!(pick, None);
    }

    #[test]
    fn wake_ticks_follow_blocking_state() {
        let mut v = vc();
        assert_eq!(v.wake_tick(5), Some(5));
        v.state = VcState::StallUntil(10);
        assert_eq!(v.wake_tick(5), Some(10));
        // A stall already expired wakes "now", not in the past.
        assert_eq!(v.wake_tick(12), Some(12));
        for blocked in [
            VcState::WaitRead,
            VcState::AtBarrier(0),
            VcState::WaitLock(1),
        ] {
            v.state = blocked;
            assert_eq!(v.wake_tick(5), None);
        }
    }

    #[test]
    fn boundary_arithmetic_counts_exec_entries() {
        let c = Core::new(4, 1.0);
        assert_eq!(c.next_boundary(0), 0);
        assert_eq!(c.next_boundary(1), 4);
        assert_eq!(c.next_boundary(4), 4);
        // Brute-force cross-check against the reference loop's gate.
        for from in 0..30u64 {
            for to in from..40u64 {
                let naive = (from..to).filter(|t| t.is_multiple_of(4)).count() as u64;
                assert_eq!(c.boundaries_in(from, to), naive, "[{from}, {to})");
            }
        }
    }

    #[test]
    fn single_thread_never_switches() {
        let mut c = Core::new(4, 1.0);
        c.assigned = vec![0];
        c.slice_left = 0;
        assert_eq!(c.pick_switch_with(|_| true, |_| true), None);
    }
}
