//! The chip: clusters + L3 + main memory + synchronisation + the
//! consolidation machinery, advanced one cache cycle at a time.
//!
//! Tick phases (all within [`Chip::step`]):
//!
//! 1. **Shared-L1 controllers** arbitrate their ports and emit events
//!    (read done / miss, store drained / missed, writebacks) that the chip
//!    resolves against the L2/L3/memory path and the inter-cluster
//!    directory.
//! 2. **Deferred events** (store-buffer slots freeing) are applied.
//! 3. **Cores** whose cycle boundary falls on this tick execute one core
//!    cycle: context-switch decisions, then up to two issued ops (at most
//!    one memory op), with blocking loads and fire-and-forget stores.
//! 4. **Cross-cluster coherence actions** queued during the tick are
//!    applied (invalidations/downgrades of remote copies).
//!
//! The whole chip is `Clone`: the oracle consolidation policy replays
//! epochs on copies and keeps the best outcome.

use crate::cache::LineState;
use crate::cluster::{Cluster, L1System};
use crate::config::{ChipConfig, CtxSwitchModel, L1Org};
use crate::consts;
use crate::core::VcState;
use crate::directory::Directory;
use crate::energy::EnergyBreakdown;
use crate::hotpath::{BarrierTable, BoundarySchedule, DeferredWheel, IdTable};
use crate::memsys::{MainMemory, MemLevel};
use crate::profile::{NoProbe, Phase, PhaseProfiler, StepProbe};
use crate::shared_l1::L1Event;
use crate::stats::{ChipStats, LevelStats, SharedL1Stats};
use respin_faults::{hash, FaultEventKind, FaultStats, FaultSummary};
use respin_noc::{mesh::Endpoint, Mesh};
use respin_pool::Team;
use respin_power::diag::{Report, Violation};
use respin_power::{array_params, CoreEnergyModel, CoreEvent};
use respin_trace::{TraceEvent, TraceKind, Tracer};
use respin_variation::{VariationConfig, VariationMap};
use respin_workloads::{Op, WorkloadSpec};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Safety valve: a single epoch may not run longer than this many ticks
/// (a stuck epoch means a simulator bug; fail loudly instead of hanging).
const MAX_EPOCH_TICKS: u64 = 200_000_000;

/// Per-instruction-class dynamic energies, precomputed at the core rail.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct InstrEnergies {
    /// Decode + register file + ROB + window, charged on every instruction.
    base_pj: f64,
    int_pj: f64,
    fp_pj: f64,
    branch_pj: f64,
    /// Address generation + LSQ, charged on memory ops.
    mem_pj: f64,
    /// Front-end fetch logic, charged once per issuing core cycle.
    fetch_pj: f64,
    /// Clock tree + latches, charged every cycle the core is powered.
    clock_pj: f64,
}

/// Deferred timed events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
enum Deferred {
    /// A store completed; free one store-buffer slot of (cluster, core).
    FreeStoreSlot(usize, usize),
}

/// Cross-cluster coherence actions applied at end of tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum RemoteOp {
    /// Remove the line from the cluster's caches (a remote write).
    Invalidate(usize, u64),
    /// Demote the line to Shared (a remote read of a Modified line).
    Downgrade(usize, u64),
}

/// The chip-global half of a core-cycle synchronisation op. The
/// cluster-local half (retire + energy charge) happens where the op
/// issues; the global half — barrier arrival maps, lock queues,
/// cross-cluster wakes, the issuing thread's resulting state — is
/// applied by [`Chip::apply_sync_op`]: immediately after the core's
/// cycle in the sequential loop, at the round barrier in canonical
/// (cluster, core) order in the cluster-sharded loop. Both orders are
/// the same total order, which is what keeps contended-lock grant order
/// (and everything downstream of it) bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SyncKind {
    /// An [`Op::Barrier`] arrival.
    Barrier(u32),
    /// An [`Op::LockAcq`].
    LockAcq(u32),
    /// An [`Op::LockRel`].
    LockRel(u32),
}

/// A sync op issued by virtual core `vc`, hosted on a core with period
/// multiple `mult`, awaiting its global half.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingSyncOp {
    vc: usize,
    mult: u64,
    kind: SyncKind,
}

/// Chip-constant inputs of a cluster-local core cycle.
#[derive(Debug, Clone, Copy)]
struct StepCtx {
    instr_e: InstrEnergies,
    ctx_cost_core_cycles: u64,
    slice_core_cycles: u64,
    /// Hardware context-switch model (vs the OS quantum model).
    hardware: bool,
}

/// What a cluster-local core cycle hands back to the chip.
#[derive(Debug, Default)]
struct CoreCycleOut {
    /// The sync op issued this cycle, if any. Sync ops end the issue
    /// group, so there is at most one per core per tick.
    sync: Option<PendingSyncOp>,
    /// Context switches taken (0 or 1), folded into the chip counter.
    switches: u64,
}

// ----------------------------------------------------- cluster sharding
//
// The cluster-sharded loop ([`Chip::step_sharded`]) runs the two
// cluster-local tick phases — shared-L1 controller arbitration and core
// execution — on a [`respin_pool::Team`], one cluster per job, by
// *moving* each `Cluster` to a worker and back (the workspace forbids
// unsafe code, so no scoped-borrow tricks: ownership round-trips through
// channels). Everything chip-global stays on the driving thread and runs
// in canonical (cluster, core) order between the parallel rounds, which
// is what makes the sharded loop bit-identical to [`Chip::step`]. See
// DESIGN.md §16 for the full determinism argument.

/// One cluster's worth of work for a parallel round.
enum ShardJob {
    /// Phase 1: arbitrate the cluster's shared-L1 ports for tick `now`,
    /// collecting controller events into `events` (drained later on the
    /// driving thread, in cluster order).
    L1Tick {
        /// Cluster index (routes the job to a stable worker).
        k: usize,
        /// The cluster, moved to the worker and handed back.
        cluster: Cluster,
        /// Persistent event buffer (comes in empty).
        events: Vec<L1Event>,
        /// The tick being executed.
        now: u64,
    },
    /// Phase 3: run every core's cycle for tick `now`, collecting the
    /// chip-global halves of any sync ops into `syncs`.
    Cores {
        /// Cluster index.
        k: usize,
        /// The cluster, moved to the worker and handed back.
        cluster: Cluster,
        /// Persistent sync-op buffer (comes in empty).
        syncs: Vec<PendingSyncOp>,
        /// Chip-constant cycle inputs.
        ctx: StepCtx,
        /// The tick being executed.
        now: u64,
    },
}

/// A completed [`ShardJob`]: the cluster back from the worker plus what
/// its round produced.
enum ShardDone {
    /// A finished [`ShardJob::L1Tick`].
    L1 {
        /// Cluster index.
        k: usize,
        /// The cluster, handed back.
        cluster: Cluster,
        /// Controller events emitted this tick.
        events: Vec<L1Event>,
    },
    /// A finished [`ShardJob::Cores`].
    Cores {
        /// Cluster index.
        k: usize,
        /// The cluster, handed back.
        cluster: Cluster,
        /// Sync ops awaiting their chip-global halves, in core order.
        syncs: Vec<PendingSyncOp>,
        /// Context switches taken across the cluster's cores.
        switches: u64,
    },
}

/// The team worker body: runs one cluster-local round. Pure with respect
/// to chip state — it sees nothing but the moved-in cluster.
fn shard_work(job: ShardJob) -> ShardDone {
    match job {
        ShardJob::L1Tick {
            k,
            mut cluster,
            mut events,
            now,
        } => {
            if let L1System::Shared(s) = &mut cluster.l1 {
                s.tick(now, &mut events);
            }
            ShardDone::L1 { k, cluster, events }
        }
        ShardJob::Cores {
            k,
            mut cluster,
            mut syncs,
            ctx,
            now,
        } => {
            let mut switches = 0u64;
            for c in 0..cluster.cores.len() {
                let out = exec_core_cycle_shared(&mut cluster, &ctx, c, now);
                switches += out.switches;
                if let Some(ps) = out.sync {
                    syncs.push(ps);
                }
            }
            ShardDone::Cores {
                k,
                cluster,
                syncs,
                switches,
            }
        }
    }
}

/// Persistent per-cluster buffers for the sharded loop, so the steady
/// state allocates nothing per tick.
struct ShardScratch {
    /// Parking slots for clusters coming back from a round (results
    /// arrive in completion order; the slots restore index order).
    slots: Vec<Option<Cluster>>,
    /// Per-cluster shared-L1 event buffers.
    ev_bufs: Vec<Vec<L1Event>>,
    /// Per-cluster pending-sync-op buffers.
    sync_bufs: Vec<Vec<PendingSyncOp>>,
    /// Per-cluster context-switch counts from the last core round.
    switch_counts: Vec<u64>,
}

impl ShardScratch {
    fn new(clusters: usize) -> Self {
        Self {
            slots: (0..clusters).map(|_| None).collect(),
            ev_bufs: (0..clusters).map(|_| Vec::new()).collect(),
            sync_bufs: (0..clusters).map(|_| Vec::new()).collect(),
            switch_counts: vec![0; clusters],
        }
    }
}

/// A live worker team plus its scratch, threaded through the run loops
/// by [`Chip::with_shard`].
struct ShardCtx<'t> {
    team: &'t Team<ShardJob, ShardDone>,
    scratch: ShardScratch,
}

#[inline]
fn retire_local(cluster: &mut Cluster, vc_id: usize) {
    cluster.vcores[vc_id].retired += 1;
    cluster.instructions += 1;
}

/// One core cycle under the shared-per-cluster L1 organisation, touching
/// nothing outside `cluster`. This is the [`Chip::exec_core_cycle`] body
/// with the chip-global parts split out: sync ops (barriers, locks) do
/// their cluster-local half here (retire + energy) and hand the global
/// half back as a [`PendingSyncOp`] for [`Chip::apply_sync_op`]. Both
/// the sequential and the sharded loop execute cycles through this one
/// function, so the split itself cannot drift between them.
///
/// Relative to the pre-split code the issuing core's fetch/L1I charges
/// now land *before* the sync op's global half instead of after; the two
/// touch disjoint accumulators (`core_dyn_pj`/`ifetch_dyn_pj` here,
/// sync maps, vcore states and `chip_interconnect_pj` there), so the
/// swap is exact, not approximate.
fn exec_core_cycle_shared(
    cluster: &mut Cluster,
    ctx: &StepCtx,
    c: usize,
    now: u64,
) -> CoreCycleOut {
    let mut out = CoreCycleOut::default();
    let mult = {
        let core = &cluster.cores[c];
        if !core.active || !now.is_multiple_of(core.mult) {
            return out;
        }
        core.mult
    };
    // The clock network toggles every cycle the core is powered,
    // stalled or not; only power gating (consolidation) removes it.
    // Counted as an integer (energy = count × clock_pj at read time)
    // so the fast path can batch idle boundaries bit-identically.
    cluster.clock_cycles += 1;
    if now < cluster.cores[c].stall_until {
        return out;
    }

    // Context-switch decision. Hardware-stacked virtual cores behave
    // like fine-grained multithreading: the register banks of all
    // hosted threads stay resident, so when the current thread cannot
    // issue this cycle the core selects a runnable sibling and executes
    // it in the *same* cycle (the paper's "hardware context switches";
    // the expensive case is migration *between* cores). The OS variant
    // pays its full quantum-switch cost and only reconsiders a blocked
    // thread at quantum granularity.
    let ctx_threshold = 2 * ctx.ctx_cost_core_cycles * mult;
    let switch = {
        let core = &cluster.cores[c];
        if core.assigned.is_empty() {
            return out;
        }
        core.pick_switch_with(
            |i| cluster.vcores[core.assigned[i]].runnable(now),
            |i| {
                let v = &cluster.vcores[core.assigned[i]];
                if ctx.hardware {
                    !v.runnable(now)
                } else {
                    v.blocked_on_sync()
                        || matches!(v.state, VcState::StallUntil(t) if t > now + ctx_threshold)
                }
            },
        )
    };
    if let Some(next) = switch {
        let core = &mut cluster.cores[c];
        core.current = next;
        core.slice_left = ctx.slice_core_cycles;
        out.switches += 1;
        if !ctx.hardware {
            core.stall_until = now + ctx.ctx_cost_core_cycles * mult;
            return out;
        }
        // Hardware: fall through and issue from the new thread now.
    }

    let vc_id = {
        let core = &mut cluster.cores[c];
        if core.slice_left != u64::MAX {
            // Semantic clamp, not a masked bug: an expired slice simply
            // stays expired until the next switch refills it.
            core.slice_left = core.slice_left.saturating_sub(1);
        }
        core.assigned[core.current]
    };
    if !cluster.vcores[vc_id].runnable(now) {
        return out;
    }
    cluster.vcores[vc_id].state = VcState::Ready;

    let mut issued_any = false;
    let mut issued_count = 0u32;
    let mut mem_issued = false;
    for _slot in 0..2 {
        let op = {
            let vc = &mut cluster.vcores[vc_id];
            match vc.held.take() {
                Some(op) => op,
                None => vc.gen.next_op(),
            }
        };
        match op {
            Op::Int => {
                retire_local(cluster, vc_id);
                cluster.core_dyn_pj += ctx.instr_e.base_pj + ctx.instr_e.int_pj;
                issued_any = true;
                issued_count += 1;
            }
            Op::Fp => {
                retire_local(cluster, vc_id);
                cluster.core_dyn_pj += ctx.instr_e.base_pj + ctx.instr_e.fp_pj;
                issued_any = true;
                issued_count += 1;
            }
            Op::Branch { mispredict } => {
                retire_local(cluster, vc_id);
                cluster.core_dyn_pj += ctx.instr_e.base_pj + ctx.instr_e.branch_pj;
                issued_any = true;
                issued_count += 1;
                if mispredict {
                    cluster.vcores[vc_id].state =
                        VcState::StallUntil(now + consts::MISPREDICT_PENALTY_CORE_CYCLES * mult);
                    break;
                }
            }
            Op::Idle { cycles } => {
                cluster.vcores[vc_id].state = VcState::StallUntil(now + cycles as u64 * mult);
                break;
            }
            Op::Load { addr } => {
                if mem_issued {
                    cluster.vcores[vc_id].held = Some(op);
                    break;
                }
                retire_local(cluster, vc_id);
                cluster.core_dyn_pj += ctx.instr_e.base_pj + ctx.instr_e.mem_pj;
                issued_any = true;
                issued_count += 1;
                if let L1System::Shared(s) = &mut cluster.l1 {
                    debug_assert!(s.can_accept_read(vc_id), "blocking loads");
                    s.issue_read(vc_id, addr, now, mult);
                }
                cluster.vcores[vc_id].state = VcState::WaitRead;
                break;
            }
            Op::Store { addr } => {
                if mem_issued {
                    cluster.vcores[vc_id].held = Some(op);
                    break;
                }
                if !cluster.cores[c].store_buffer_has_room() {
                    let vc = &mut cluster.vcores[vc_id];
                    vc.held = Some(op);
                    vc.state = VcState::StallUntil(now + mult);
                    break;
                }
                retire_local(cluster, vc_id);
                cluster.core_dyn_pj += ctx.instr_e.base_pj + ctx.instr_e.mem_pj;
                issued_any = true;
                issued_count += 1;
                mem_issued = true;
                if let L1System::Shared(s) = &mut cluster.l1 {
                    s.issue_store(c, addr, now);
                }
                cluster.cores[c].pending_stores += 1;
            }
            Op::Barrier { id } => {
                retire_local(cluster, vc_id);
                cluster.core_dyn_pj += ctx.instr_e.base_pj;
                issued_any = true;
                issued_count += 1;
                out.sync = Some(PendingSyncOp {
                    vc: vc_id,
                    mult,
                    kind: SyncKind::Barrier(id),
                });
                break;
            }
            Op::LockAcq { lock } => {
                retire_local(cluster, vc_id);
                cluster.core_dyn_pj += ctx.instr_e.base_pj + ctx.instr_e.mem_pj;
                issued_any = true;
                issued_count += 1;
                out.sync = Some(PendingSyncOp {
                    vc: vc_id,
                    mult,
                    kind: SyncKind::LockAcq(lock),
                });
                break;
            }
            Op::LockRel { lock } => {
                retire_local(cluster, vc_id);
                cluster.core_dyn_pj += ctx.instr_e.base_pj + ctx.instr_e.mem_pj;
                issued_any = true;
                issued_count += 1;
                out.sync = Some(PendingSyncOp {
                    vc: vc_id,
                    mult,
                    kind: SyncKind::LockRel(lock),
                });
                break;
            }
            Op::Done => {
                cluster.vcores[vc_id].state = VcState::Finished;
                break;
            }
        }
    }

    if issued_any {
        cluster.core_dyn_pj += ctx.instr_e.fetch_pj;
        // The L1I array is read once per ~6 sequential instructions
        // (a 32 B line holds 8 fixed-width instructions; the fetch line
        // buffer filters repeat reads, branches refetch early).
        cluster.ifetch_dyn_pj += cluster.l1_costs.i_read_pj * issued_count as f64 / 6.0;
    }
    out
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct LockEntry {
    holder: Option<(usize, usize)>,
    waiters: VecDeque<(usize, usize)>,
    /// Cluster that last held the lock (for the line-transfer penalty);
    /// `usize::MAX` when never held.
    last_cluster: usize,
}

/// Statistics and outcome of one consolidation epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochReport {
    /// Instructions retired per cluster during the epoch.
    pub cluster_instructions: Vec<u64>,
    /// Cluster-local energy spent during the epoch, pJ.
    pub cluster_energy_pj: Vec<f64>,
    /// Active physical cores per cluster at epoch end.
    pub active_cores: Vec<usize>,
    /// Energy per instruction per cluster (f64::INFINITY when a cluster
    /// retired nothing).
    pub cluster_epi: Vec<f64>,
    /// Whether the whole workload finished during this epoch.
    pub finished: bool,
    /// Tick at epoch start / end.
    pub start_tick: u64,
    /// Tick at epoch end.
    pub end_tick: u64,
    /// Cores per cluster not decommissioned by fault injection (the
    /// consolidation policies must not target more than this).
    pub healthy_cores: Vec<usize>,
}

/// Final outcome of a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Total ticks simulated.
    pub ticks: u64,
    /// Wall-clock time simulated, picoseconds.
    pub time_ps: f64,
    /// Total retired instructions.
    pub instructions: u64,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Detailed statistics.
    pub stats: ChipStats,
}

impl RunResult {
    /// Average CMP power over the run, mW.
    pub fn average_power_mw(&self) -> f64 {
        self.energy.average_power_mw(self.time_ps)
    }

    /// Chip energy per instruction, pJ.
    pub fn epi_pj(&self) -> f64 {
        if self.instructions == 0 {
            return f64::INFINITY;
        }
        self.energy.chip_total_pj() / self.instructions as f64
    }
}

/// The simulated chip.
#[derive(Debug, Clone)]
pub struct Chip {
    /// The configuration this chip was built from.
    pub config: ChipConfig,
    core_model: CoreEnergyModel,
    instr_e: InstrEnergies,
    /// Clusters.
    pub clusters: Vec<Cluster>,
    l3: MemLevel,
    l3_leak_mw: f64,
    /// The chip's mesh interconnect (cluster tiles around the L3).
    mesh: Mesh,
    cluster_dir: Directory,
    mem: MainMemory,
    /// Current tick.
    pub tick: u64,
    /// Tick measurement started at (0, or the end of the warm-up).
    measure_start_tick: u64,
    // Dense id-indexed tables (crate::hotpath), not BTreeMaps: sync state
    // is touched on the executed-tick hot path, the id spaces are small
    // and dense, and every observable traversal (diagnostics, tests, the
    // snapshot form) is in ascending id order by construction — the same
    // canonical-order guarantee the old maps gave (determinism lint
    // D001), without the per-op tree rebalancing.
    barriers: BarrierTable,
    locks: IdTable<LockEntry>,
    /// Per-cluster boundary-core schedules (see
    /// [`crate::hotpath::BoundarySchedule`]): derived from the cores'
    /// fixed period mults, rebuilt at construction and snapshot restore,
    /// never serialised. Purely a stepping-loop accelerator — skipped
    /// cores are exactly the ones whose core cycle is a no-op.
    boundary_scheds: Vec<BoundarySchedule>,
    /// Deferred completions in a bucketed wakeup wheel (drained in the
    /// old heap's exact pop order; see [`crate::hotpath::DeferredWheel`]).
    deferred: DeferredWheel<Deferred>,
    /// Reusable drain buffer for [`Chip::drain_deferred`].
    deferred_scratch: Vec<(u64, Deferred)>,
    pending_remote: Vec<RemoteOp>,
    ev_scratch: Vec<L1Event>,
    /// Persistent scratch for the epoch-boundary scrub walk (avoids a
    /// per-scrub `Vec` collect of every resident line).
    scrub_scratch: Vec<(u64, LineState)>,
    /// Run the naive tick-by-tick loop instead of the event-driven fast
    /// path. The fast path is bit-identical by contract (see
    /// [`Chip::advance`]); the reference loop stays available as the
    /// oracle for differential tests.
    reference_loop: bool,
    /// Ticks the fast path advanced without executing them (observability
    /// only — deliberately *not* part of [`ChipStats`], which must be
    /// bit-identical across both loops).
    ticks_skipped: u64,
    total_threads: u32,
    chip_interconnect_pj: f64,
    coherence_messages: u64,
    migrations: u64,
    context_switches: u64,
    consolidation_trace: Vec<(u64, usize)>,
    ctx_cost_core_cycles: u64,
    slice_core_cycles: u64,
    /// Draw key for transient core faults:
    /// `combine([seed, faults.seed, DOMAIN_CORE])`.
    fault_key: u64,
    /// Fault-maintenance epochs since construction. Deliberately *not*
    /// reset with measurements: it indexes the deterministic fault
    /// universe, which must keep advancing across warm-up resets.
    fault_epochs: u64,
    /// Chip-level (core fault / decommission) counters and trace.
    core_fault_stats: FaultStats,
    /// Observability handle. Disabled by default; a disabled tracer
    /// constructs no events, and sinks can only observe — simulation
    /// outcomes are bit-identical with tracing on or off.
    tracer: Tracer,
    /// Worker budget for cluster-sharded stepping in the run loops
    /// (1 = sequential). A performance knob with no simulation effect:
    /// results are bit-identical at every width, and like the tracer it
    /// is excluded from snapshots (restored as 1) so persisted state
    /// never encodes host parallelism.
    cluster_workers: usize,
}

impl Chip {
    /// Builds a chip running `spec` (one thread per virtual core) with the
    /// given `seed` controlling process variation and workload streams.
    ///
    /// Panics on an invalid configuration; use [`Chip::try_new`] to receive
    /// the structured diagnostics instead.
    pub fn new(config: ChipConfig, spec: &WorkloadSpec, seed: u64) -> Self {
        match Self::try_new(config, spec, seed) {
            Ok(chip) => chip,
            Err(report) => panic!("invalid chip configuration:\n{report}"),
        }
    }

    /// Builds a chip, validating the configuration first. `Err` carries the
    /// full [`Report`] of every violated invariant.
    pub fn try_new(config: ChipConfig, spec: &WorkloadSpec, seed: u64) -> Result<Self, Report> {
        config.validate()?;
        let mut spec = spec.clone();
        if let Some(n) = config.instructions_per_thread {
            spec.instructions_per_thread = n;
        }

        let var_config = VariationConfig {
            cores: config.total_cores(),
            ..VariationConfig::default()
        };
        let variation = VariationMap::generate(&var_config, config.core_vdd, config.band, seed);

        let core_model = CoreEnergyModel::default();
        let e = |ev: CoreEvent| core_model.event_energy_pj(ev, config.core_vdd);
        let instr_e = InstrEnergies {
            base_pj: e(CoreEvent::Decode)
                + 2.0 * e(CoreEvent::RegRead)
                + 0.8 * e(CoreEvent::RegWrite)
                + e(CoreEvent::RobEntry)
                + e(CoreEvent::WindowWakeup),
            int_pj: e(CoreEvent::IntAlu),
            fp_pj: e(CoreEvent::FpAlu),
            branch_pj: e(CoreEvent::BranchPredict),
            mem_pj: e(CoreEvent::AddressGen) + e(CoreEvent::LsqEntry),
            fetch_pj: e(CoreEvent::Fetch),
            clock_pj: e(CoreEvent::ClockTree),
        };

        let mut clusters: Vec<Cluster> = (0..config.clusters)
            .map(|k| Cluster::build(&config, &variation, &spec, k, seed, &core_model))
            .collect();
        for cl in &mut clusters {
            cl.clock_pj = instr_e.clock_pj;
        }

        let l3_geom = config.l3_geometry();
        let l3_params = array_params(config.cache_tech, l3_geom, config.cache_vdd);
        let l3 = MemLevel::new(
            l3_geom,
            &l3_params,
            config.read_ticks(&l3_params, false),
            config.write_ticks(&l3_params),
            consts::L3_ACCEPT_INTERVAL_TICKS,
        );

        let (ctx_cost, slice) = match config.ctx_switch {
            CtxSwitchModel::Hardware => (
                consts::HW_CTX_SWITCH_CORE_CYCLES,
                consts::HW_SLICE_CORE_CYCLES,
            ),
            CtxSwitchModel::Os => (
                consts::OS_CTX_SWITCH_CORE_CYCLES,
                consts::OS_SLICE_CORE_CYCLES,
            ),
        };

        let total_threads = config.total_cores() as u32;
        let total_cores = config.total_cores();
        let mesh = Mesh::new(config.clusters);
        let fault_key = hash::combine(&[seed, config.faults.seed, hash::DOMAIN_CORE]);
        let boundary_scheds = Self::build_boundary_scheds(&clusters);
        Ok(Self {
            config,
            core_model,
            instr_e,
            clusters,
            l3_leak_mw: l3_params.leakage_mw,
            l3,
            mesh,
            cluster_dir: Directory::new(),
            mem: MainMemory::default(),
            tick: 0,
            measure_start_tick: 0,
            barriers: BarrierTable::new(),
            locks: IdTable::new(),
            boundary_scheds,
            deferred: DeferredWheel::new(),
            deferred_scratch: Vec::new(),
            pending_remote: Vec::new(),
            ev_scratch: Vec::new(),
            scrub_scratch: Vec::new(),
            reference_loop: false,
            ticks_skipped: 0,
            total_threads,
            chip_interconnect_pj: 0.0,
            coherence_messages: 0,
            migrations: 0,
            context_switches: 0,
            consolidation_trace: vec![(0, total_cores)],
            ctx_cost_core_cycles: ctx_cost,
            slice_core_cycles: slice,
            fault_key,
            fault_epochs: 0,
            core_fault_stats: FaultStats::default(),
            tracer: Tracer::disabled(),
            cluster_workers: 1,
        })
    }

    /// Builds the per-cluster boundary-core schedules from the cores'
    /// period mults (fixed for the chip's lifetime).
    fn build_boundary_scheds(clusters: &[Cluster]) -> Vec<BoundarySchedule> {
        clusters
            .iter()
            .map(|cl| BoundarySchedule::build(cl.cores.iter().map(|c| c.mult)))
            .collect()
    }

    /// Sets the worker budget for cluster-sharded stepping in the run
    /// loops ([`Chip::run_epoch`], [`Chip::run_warmup`],
    /// [`Chip::run_to_completion`]); clamped to ≥ 1. Widths above 1 only
    /// engage for eligible configurations (shared-per-cluster L1 with
    /// hardware context switches) and never change results — the
    /// sequential loop is the bit-identity oracle at every width.
    pub fn set_cluster_workers(&mut self, n: usize) {
        self.cluster_workers = n.max(1);
    }

    /// The configured cluster-shard worker budget (≥ 1).
    pub fn cluster_workers(&self) -> usize {
        self.cluster_workers
    }

    /// Installs a trace sink. Cloned chips (oracle replays) inherit the
    /// tracer; pass [`Tracer::disabled()`] to detach.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The installed tracer, for layers above the chip (policy drivers)
    /// to emit their own events into the same sink.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Selects the stepping loop: `true` runs the naive tick-by-tick
    /// reference loop, `false` (the default) the event-driven fast path.
    /// Both produce bit-identical results; see [`Chip::advance`].
    pub fn set_reference_loop(&mut self, reference: bool) {
        self.reference_loop = reference;
    }

    /// True when the naive reference loop is selected.
    pub fn reference_loop(&self) -> bool {
        self.reference_loop
    }

    /// Ticks the fast path batch-advanced instead of executing
    /// one-by-one. Always 0 under the reference loop. A perf metric, not
    /// a simulation output: it is excluded from [`ChipStats`].
    pub fn ticks_skipped(&self) -> u64 {
        self.ticks_skipped
    }

    /// True when every thread has retired its full stream.
    pub fn finished(&self) -> bool {
        self.clusters.iter().all(Cluster::finished)
    }

    /// Total retired instructions.
    pub fn total_instructions(&self) -> u64 {
        self.clusters.iter().map(|c| c.instructions).sum()
    }

    /// Advances the chip by one cache cycle.
    pub fn step(&mut self) {
        self.step_probed(&mut NoProbe);
    }

    /// [`Chip::step`] with a phase-attribution probe. The probe is
    /// observation-only (it never sees simulator state), so every probed
    /// run is bit-identical to an unprobed one; with [`NoProbe`] the
    /// marks monomorphise to nothing and this *is* `step`.
    fn step_probed<P: StepProbe>(&mut self, probe: &mut P) {
        // Time since the previous tick's last phase — next-event
        // computation, idle skipping, run-loop control — belongs to the
        // between-steps bucket.
        probe.mark(Phase::EpochMaintenance);
        let now = self.tick;

        // Phase 1: shared-L1 controllers. One persistent scratch buffer
        // carries each controller's events to the dispatch loop; it must
        // come back empty from every cluster (drain consumes it) and is
        // returned empty for the next tick.
        let mut events = std::mem::take(&mut self.ev_scratch);
        debug_assert!(events.is_empty(), "event scratch leaked from last tick");
        for k in 0..self.clusters.len() {
            if let L1System::Shared(s) = &mut self.clusters[k].l1 {
                s.tick(now, &mut events);
            }
            probe.mark(Phase::SharedL1Tick);
            for ev in events.drain(..) {
                self.handle_l1_event(k, ev, now);
            }
            debug_assert!(events.is_empty(), "events must not outlive their cluster");
            probe.mark(Phase::EventDrain);
        }
        self.ev_scratch = events;

        // Phase 2: deferred completions.
        self.drain_deferred(now);
        probe.mark(Phase::EventDrain);

        // Phase 3: core execution. The boundary schedule names exactly
        // the cores whose cycle can do anything at `now` (the rest
        // would early-return before any side effect), so visiting only
        // those is the same computation. Moved out during the loop so
        // `exec_core_cycle` can borrow `self` mutably.
        let scheds = std::mem::take(&mut self.boundary_scheds);
        for (k, sched) in scheds.iter().enumerate() {
            match sched.cores_at(now) {
                Some(on_boundary) => {
                    for &c in on_boundary {
                        self.exec_core_cycle(k, c as usize, now);
                    }
                }
                None => {
                    for c in 0..self.clusters[k].cores.len() {
                        self.exec_core_cycle(k, c, now);
                    }
                }
            }
        }
        self.boundary_scheds = scheds;
        probe.mark(Phase::CoreExecute);

        // Phase 4: cross-cluster coherence actions.
        self.drain_remote();
        probe.mark(Phase::SyncReplay);

        self.tick = now + 1;
        probe.tick_executed();
    }

    /// Phase 2 of a tick: applies deferred completions due at `now`.
    fn drain_deferred(&mut self, now: u64) {
        if self.deferred.peek_next().is_none_or(|t| t > now) {
            return;
        }
        // Pop due entries into the persistent scratch (the wheel hands
        // them out in the old heap's exact ascending order), then apply.
        self.deferred.drain_into(now, &mut self.deferred_scratch);
        let drained = std::mem::take(&mut self.deferred_scratch);
        for &(_, d) in &drained {
            match d {
                Deferred::FreeStoreSlot(k, c) => {
                    let core = &mut self.clusters[k].cores[c];
                    // Underflow here means a store-buffer slot was freed
                    // that was never occupied — a simulator bug that a
                    // saturating subtract would silently launder into a
                    // permanently-roomier store buffer. Fail loudly with
                    // the structured diagnostic instead of clamping.
                    let Some(rest) = core.pending_stores.checked_sub(1) else {
                        panic!(
                            "{}",
                            Violation::error(
                                "SIM-STORE-UNDERFLOW",
                                "store-buffer slots freed never exceed slots occupied",
                                format!("Chip::drain_deferred: cluster {k}, core {c}, tick {now}"),
                                "FreeStoreSlot fired with pending_stores == 0",
                            )
                        );
                    };
                    core.pending_stores = rest;
                }
            }
        }
        // Hand the buffer back so steady-state draining never allocates.
        self.deferred_scratch = drained;
    }

    /// Phase 4 of a tick: applies cross-cluster coherence actions queued
    /// during the tick.
    fn drain_remote(&mut self) {
        if !self.pending_remote.is_empty() {
            let ops = std::mem::take(&mut self.pending_remote);
            for op in &ops {
                self.apply_remote(*op);
            }
            self.pending_remote = ops;
            self.pending_remote.clear();
        }
    }

    /// Advances the chip by one cache cycle with the cluster-local phases
    /// fanned out across `team`'s workers, one cluster per job.
    ///
    /// Bit-identity with [`Chip::step`] rests on three facts, each tied
    /// to the code it describes below; the eligibility gate
    /// ([`Chip::shard_width`]) supplies the fourth (hardware context
    /// switches), and the differential tests enforce the whole contract.
    ///
    /// 1. **Phase 1 commutes.** `SharedL1::tick` takes `&mut self` only —
    ///    a controller's arbitration reads nothing outside its own
    ///    cluster. Draining cluster `j`'s events (`handle_l1_event`)
    ///    touches cluster `j`'s own state plus chip-global structures
    ///    (L3/mesh/memory/directory, the deferred heap, the remote-op
    ///    queue) — never another cluster's controller. So `tick(0),
    ///    drain(0), tick(1), drain(1)` (sequential) and `tick(all) ∥,
    ///    then drain(0), drain(1)` (here) perform identical mutations in
    ///    identical per-structure order.
    /// 2. **Phase 3 splits exactly.** Core cycles are cluster-local
    ///    except the chip-global halves of sync ops, which
    ///    [`exec_core_cycle_shared`] hands back as [`PendingSyncOp`]s.
    ///    Replaying them in (cluster, core) lexicographic order *is* the
    ///    sequential order, so barrier-arrival counts and lock-grant
    ///    queues are identical.
    /// 3. **Deferring the global halves is invisible.** Between a sync
    ///    op's cycle and its replay, other cores observe pre-replay vcore
    ///    states. Every state the replay would have written is
    ///    equivalently non-runnable at `now`: `AtBarrier`/`WaitLock`
    ///    stay blocked, and every wake the replay performs is a
    ///    `StallUntil(now + p)` with `p ≥ 1` (barrier release penalties
    ///    are ≥ 1; lock wakes clamp `penalty.max(1)`; a zero-penalty
    ///    lock *acquisition* leaves the issuing thread `Ready`, but only
    ///    its own core — which already ran — reads that). Under the
    ///    hardware context-switch model the switch predicate is exactly
    ///    `!runnable(now)`, so pre- and post-replay states decide
    ///    identically. (The OS model's predicate also inspects
    ///    `blocked_on_sync` and stall *distance*, which the replay does
    ///    change — hence the gate excludes it.)
    fn step_sharded(&mut self, team: &Team<ShardJob, ShardDone>, scratch: &mut ShardScratch) {
        let now = self.tick;
        let n = self.clusters.len();

        // Phase 1: shared-L1 controllers, parallel round + ordered drain.
        let mut clusters = std::mem::take(&mut self.clusters);
        for (k, cluster) in clusters.drain(..).enumerate() {
            let events = std::mem::take(&mut scratch.ev_bufs[k]);
            debug_assert!(events.is_empty(), "event scratch leaked from last tick");
            team.submit(
                k,
                ShardJob::L1Tick {
                    k,
                    cluster,
                    events,
                    now,
                },
            );
        }
        for _ in 0..n {
            match team.recv() {
                ShardDone::L1 { k, cluster, events } => {
                    scratch.slots[k] = Some(cluster);
                    scratch.ev_bufs[k] = events;
                }
                ShardDone::Cores { .. } => {
                    unreachable!("core-phase result during the L1 round")
                }
            }
        }
        for slot in scratch.slots.iter_mut() {
            clusters.push(slot.take().expect("cluster missing from the L1 round"));
        }
        self.clusters = clusters;
        for k in 0..n {
            let mut events = std::mem::take(&mut scratch.ev_bufs[k]);
            for ev in events.drain(..) {
                self.handle_l1_event(k, ev, now);
            }
            scratch.ev_bufs[k] = events;
        }

        // Phase 2: deferred completions (chip-global heap, main thread).
        self.drain_deferred(now);

        // Phase 3: core execution, parallel round + ordered sync replay.
        let ctx = self.step_ctx();
        let mut clusters = std::mem::take(&mut self.clusters);
        for (k, cluster) in clusters.drain(..).enumerate() {
            let syncs = std::mem::take(&mut scratch.sync_bufs[k]);
            debug_assert!(syncs.is_empty(), "sync scratch leaked from last tick");
            team.submit(
                k,
                ShardJob::Cores {
                    k,
                    cluster,
                    syncs,
                    ctx,
                    now,
                },
            );
        }
        for _ in 0..n {
            match team.recv() {
                ShardDone::Cores {
                    k,
                    cluster,
                    syncs,
                    switches,
                } => {
                    scratch.slots[k] = Some(cluster);
                    scratch.sync_bufs[k] = syncs;
                    scratch.switch_counts[k] = switches;
                }
                ShardDone::L1 { .. } => {
                    unreachable!("L1-phase result during the core round")
                }
            }
        }
        for slot in scratch.slots.iter_mut() {
            clusters.push(slot.take().expect("cluster missing from the core round"));
        }
        self.clusters = clusters;
        for k in 0..n {
            self.context_switches += scratch.switch_counts[k];
            scratch.switch_counts[k] = 0;
            let mut syncs = std::mem::take(&mut scratch.sync_bufs[k]);
            for ps in syncs.drain(..) {
                self.apply_sync_op(k, ps, now);
            }
            scratch.sync_bufs[k] = syncs;
        }

        // Phase 4: cross-cluster coherence actions.
        self.drain_remote();

        self.tick = now + 1;
    }

    /// Chip-constant inputs of a cluster-local core cycle.
    fn step_ctx(&self) -> StepCtx {
        StepCtx {
            instr_e: self.instr_e,
            ctx_cost_core_cycles: self.ctx_cost_core_cycles,
            slice_core_cycles: self.slice_core_cycles,
            hardware: self.config.ctx_switch == CtxSwitchModel::Hardware,
        }
    }

    /// The shard width the run loops should use, or `None` to stay
    /// sequential. Sharding needs more than one eligible worker and is
    /// restricted to the configurations where the deferred-sync-replay
    /// argument (see [`Chip::step_sharded`]) holds:
    ///
    /// - **Shared-per-cluster L1.** The private-L1 core cycle walks the
    ///   chip-level memory hierarchy inline (loads) and pushes deferred
    ///   completions mid-issue (stores) — it has no cluster-local form.
    /// - **Hardware context switches.** The OS model's switch predicate
    ///   reads `blocked_on_sync` and the stall *deadline*, both of which
    ///   differ between a barrier/lock wake applied immediately
    ///   (sequential) and at the round boundary (sharded); the hardware
    ///   predicate `!runnable(now)` cannot tell the two apart.
    ///
    /// Ineligible configurations silently run the sequential loop — the
    /// knob is a performance hint and must never change results.
    fn shard_width(&self) -> Option<usize> {
        let width = self.cluster_workers.min(self.clusters.len());
        if width > 1
            && self.config.l1_org == L1Org::SharedPerCluster
            && self.config.ctx_switch == CtxSwitchModel::Hardware
        {
            Some(width)
        } else {
            None
        }
    }

    /// Runs `f` with a live worker team when [`Chip::shard_width`] says
    /// sharding applies, and without one otherwise. The team (and its
    /// threads) lives exactly as long as `f`.
    fn with_shard<T>(&mut self, f: impl FnOnce(&mut Self, Option<&mut ShardCtx>) -> T) -> T {
        match self.shard_width() {
            Some(width) => {
                let scratch = ShardScratch::new(self.clusters.len());
                respin_pool::with_team(width, shard_work, |team| {
                    let mut ctx = ShardCtx { team, scratch };
                    f(self, Some(&mut ctx))
                })
            }
            None => f(self, None),
        }
    }

    /// Applies the chip-global half of a sync op issued by cluster `k`:
    /// barrier arrival/release, lock acquisition/queueing/release, and
    /// the issuing (and any woken) thread's resulting state. Called
    /// immediately after the core's cycle in the sequential loop and in
    /// canonical (cluster, core) order at the round boundary in the
    /// sharded loop — the same total order either way.
    fn apply_sync_op(&mut self, k: usize, ps: PendingSyncOp, now: u64) {
        let PendingSyncOp {
            vc: vc_id,
            mult,
            kind,
        } = ps;
        match kind {
            SyncKind::Barrier(id) => {
                let arrivals = self.barriers.arrive(id);
                if arrivals == self.total_threads {
                    self.barriers.reset(id);
                    self.release_barrier(id, k, now);
                    self.clusters[k].vcores[vc_id].state = VcState::StallUntil(now + mult);
                } else {
                    self.clusters[k].vcores[vc_id].state = VcState::AtBarrier(id);
                }
            }
            SyncKind::LockAcq(lock) => {
                let (acquired, transfer_from) = {
                    let e = self.locks.get_or_default(lock);
                    if e.holder.is_none() {
                        e.holder = Some((k, vc_id));
                        let from = e.last_cluster;
                        e.last_cluster = k;
                        (true, from)
                    } else {
                        e.waiters.push_back((k, vc_id));
                        (false, usize::MAX)
                    }
                };
                if acquired {
                    let penalty = if transfer_from == usize::MAX {
                        0
                    } else {
                        self.sync_transfer_ticks(transfer_from == k)
                    };
                    if penalty > 0 {
                        self.clusters[k].vcores[vc_id].state = VcState::StallUntil(now + penalty);
                    }
                } else {
                    self.clusters[k].vcores[vc_id].state = VcState::WaitLock(lock);
                }
            }
            SyncKind::LockRel(lock) => {
                let wake = {
                    let e = self
                        .locks
                        .get_mut(lock)
                        .expect("release of a lock that was never acquired");
                    debug_assert_eq!(e.holder, Some((k, vc_id)));
                    e.last_cluster = k;
                    match e.waiters.pop_front() {
                        Some(next) => {
                            e.holder = Some(next);
                            Some(next)
                        }
                        None => {
                            e.holder = None;
                            None
                        }
                    }
                };
                if let Some((kk, vv)) = wake {
                    let penalty = self.sync_transfer_ticks(kk == k);
                    self.clusters[kk].vcores[vv].state = VcState::StallUntil(now + penalty.max(1));
                }
            }
        }
    }

    /// Advances the chip to the next tick *at which anything can happen*,
    /// then executes it with [`Chip::step`].
    ///
    /// This is the event-driven fast path. Its correctness rests on the
    /// **next-wakeup invariant**: every sleeping component owns a ready
    /// tick — pending shared-L1 operations their `arrival_tick`, deferred
    /// completions their heap key, stalled threads their `StallUntil`
    /// deadline — and threads in `WaitRead`/`AtBarrier`/`WaitLock` are
    /// only ever woken by an event that fires *inside an executed tick*
    /// bounded by one of those deadlines. A tick strictly before every
    /// deadline therefore mutates nothing but three exactly-batchable
    /// integer counters (per-cluster clock cycles, per-core `slice_left`,
    /// per-controller zero-arrival histogram cycles), which
    /// [`Chip::skip_idle_ticks`] applies in O(cores). `ChipStats`, energy
    /// and traces are bit-identical to the reference loop by
    /// construction; `integration_fastpath.rs` enforces it.
    ///
    /// With [`Chip::set_reference_loop`]`(true)` this is exactly
    /// [`Chip::step`].
    ///
    /// # Panics
    ///
    /// When no component owns a deadline and the workload has not
    /// finished — a genuine deadlock the reference loop would only
    /// surface as an epoch-tick-limit assertion much later.
    pub fn advance(&mut self) {
        self.advance_with(None, &mut NoProbe);
    }

    /// [`Chip::advance`] with an optional live shard context and a phase
    /// probe: the skip decision (the conservative horizon — every
    /// cluster's next-wakeup deadline folded with the shared deadlines)
    /// is always taken on the driving thread; only the executed tick is
    /// sharded. The probe only instruments the sequential step (profiled
    /// runs force `shard = None`); the sharded step runs unprobed.
    fn advance_with<P: StepProbe>(&mut self, shard: Option<&mut ShardCtx<'_>>, probe: &mut P) {
        if !self.reference_loop {
            match self.next_event_tick() {
                Some(t) if t > self.tick => self.skip_idle_ticks(t),
                Some(_) => {}
                None => {
                    assert!(
                        self.finished(),
                        "simulator deadlock: no pending events and no runnable thread \
                         at tick {}",
                        self.tick
                    );
                }
            }
        }
        match shard {
            Some(ctx) => self.step_sharded(ctx.team, &mut ctx.scratch),
            None => self.step_probed(probe),
        }
    }

    /// Earliest tick ≥ `self.tick` at which any component can act: the
    /// minimum over every shared-L1 controller's pending-arrival deadline,
    /// the deferred-completion heap, and each active core's next issue
    /// boundary (first core-cycle boundary past its hosted threads'
    /// earliest wake and its own `stall_until`). `None` when every
    /// component sleeps forever (normally: the workload finished).
    fn next_event_tick(&self) -> Option<u64> {
        let now = self.tick;
        // Every deadline folds in clamped to `now`, so `now` itself is a
        // floor: the moment any component is due at or before the
        // current tick the answer is known and the scan stops. Sources
        // are visited cheapest-first — the wheel's cached minimum is
        // O(1), a busy controller usually trips in its first few request
        // slots, and the per-core vcore walk runs only when everything
        // else is quiet (the case where its exact minimum is needed).
        let mut next = u64::MAX;
        if let Some(t) = self.deferred.peek_next() {
            if t <= now {
                return Some(now);
            }
            next = next.min(t);
        }
        for cl in &self.clusters {
            if let L1System::Shared(s) = &cl.l1 {
                match s.next_work_tick_from(now) {
                    Some(t) if t <= now => return Some(now),
                    Some(t) => next = next.min(t),
                    None => {}
                }
            }
        }
        for cl in &self.clusters {
            for core in &cl.cores {
                if !core.active || core.assigned.is_empty() {
                    continue;
                }
                let wake = core
                    .assigned
                    .iter()
                    .filter_map(|&vc| cl.vcores[vc].wake_tick(now))
                    .min();
                if let Some(w) = wake {
                    let t = core.next_boundary(w.max(core.stall_until).max(now));
                    if t <= now {
                        return Some(now);
                    }
                    next = next.min(t);
                }
            }
        }
        if next == u64::MAX {
            None
        } else {
            Some(next)
        }
    }

    /// Batch-applies the effects of the naive loop over the idle window
    /// `[self.tick, target)` — every tick of which is strictly before
    /// every component deadline (established by
    /// [`Chip::next_event_tick`]) — and jumps the clock to `target`.
    ///
    /// On such a tick the reference loop mutates exactly three things,
    /// all integer counters with batched equivalents:
    /// 1. each shared-L1 controller records a zero-arrival cycle,
    /// 2. each active core at a core-cycle boundary counts one clock-tree
    ///    cycle, and
    /// 3. each tenanted core at a boundary past `stall_until` decrements
    ///    `slice_left` (no context switch can fire: switching requires a
    ///    runnable sibling, and no hosted thread wakes inside the window).
    fn skip_idle_ticks(&mut self, target: u64) {
        let now = self.tick;
        debug_assert!(target > now);
        for cl in &mut self.clusters {
            if let L1System::Shared(s) = &mut cl.l1 {
                debug_assert!(s.next_work_tick().is_none_or(|t| t >= target));
                s.note_idle_ticks(target - now);
            }
            let mut clock_cycles = 0;
            for core in &mut cl.cores {
                if !core.active {
                    continue;
                }
                clock_cycles += core.boundaries_in(now, target);
                if !core.assigned.is_empty() && core.slice_left != u64::MAX {
                    let issue_from = now.max(core.stall_until);
                    if issue_from < target {
                        // Semantic clamp (audited): the batched window may
                        // legitimately outlast the remaining slice; an
                        // expired slice floors at 0 exactly as the
                        // per-tick decrement in the core cycle does.
                        core.slice_left = core
                            .slice_left
                            .saturating_sub(core.boundaries_in(issue_from, target));
                    }
                }
            }
            cl.clock_cycles += clock_cycles;
        }
        debug_assert!(self.deferred.peek_next().is_none_or(|t| t >= target));
        debug_assert!(self.pending_remote.is_empty());
        self.ticks_skipped += target - now;
        self.tick = target;
    }

    fn apply_remote(&mut self, op: RemoteOp) {
        match op {
            RemoteOp::Invalidate(k, line) => {
                let cluster = &mut self.clusters[k];
                match &mut cluster.l1 {
                    L1System::Shared(s) => {
                        s.invalidate(line);
                    }
                    L1System::Private { l1d, dir, .. } => {
                        for (c, arr) in l1d.iter_mut().enumerate() {
                            if arr.invalidate(line).is_some() {
                                dir.evict(line, c as u8);
                            }
                        }
                    }
                }
                cluster.l2.invalidate(cluster.l2.block_addr(line));
            }
            RemoteOp::Downgrade(k, line) => {
                let cluster = &mut self.clusters[k];
                match &mut cluster.l1 {
                    L1System::Shared(s) => s.downgrade(line),
                    L1System::Private { l1d, .. } => {
                        for arr in l1d.iter_mut() {
                            if arr.probe(line).is_some() {
                                arr.set_state(line, LineState::Shared);
                            }
                        }
                    }
                }
            }
        }
    }

    // ---------------------------------------------------------------- L1 events

    fn handle_l1_event(&mut self, k: usize, ev: L1Event, now: u64) {
        match ev {
            L1Event::ReadDone {
                core: vc,
                completion_tick,
            } => {
                self.clusters[k].vcores[vc].state = VcState::StallUntil(completion_tick);
            }
            L1Event::ReadMiss {
                core: vc,
                addr,
                mult,
                issue_tick,
            } => {
                let (ready, state) = self.cluster_read_path(k, addr, now + 1);
                if let L1System::Shared(s) = &mut self.clusters[k].l1 {
                    s.enqueue_fill(addr, ready, state);
                }
                let completion = align_boundary(issue_tick, mult, ready + 1);
                self.clusters[k].vcores[vc].state = VcState::StallUntil(completion);
            }
            L1Event::StoreDrained {
                core,
                completion_tick,
                needs_ownership,
                addr,
            } => {
                // A line already held Modified was acquired earlier; for
                // E/S lines confirm or obtain inter-cluster ownership (the
                // adder is zero when we are already the sole sharer).
                let mut completion = completion_tick;
                if needs_ownership {
                    completion += self.acquire_cluster_ownership(k, addr);
                }
                self.deferred
                    .push(completion, Deferred::FreeStoreSlot(k, core));
            }
            L1Event::StoreMiss { core, addr } => {
                let ready = {
                    let (r, _) = self.cluster_read_path(k, addr, now + 1);
                    r + self.acquire_cluster_ownership(k, addr)
                };
                let write_ticks = if let L1System::Shared(s) = &mut self.clusters[k].l1 {
                    s.enqueue_fill(addr, ready, LineState::Modified);
                    s.write_ticks()
                } else {
                    1
                };
                self.deferred
                    .push(ready + write_ticks, Deferred::FreeStoreSlot(k, core));
            }
            L1Event::Writeback { addr } => {
                let l2_addr = self.clusters[k].l2.block_addr(addr);
                self.clusters[k].l2.write(l2_addr, now);
            }
        }
    }

    /// Obtains inter-cluster write ownership of `line` for cluster `k`.
    /// Returns the latency adder; remote copies are queued for
    /// invalidation.
    fn acquire_cluster_ownership(&mut self, k: usize, line: u64) -> u64 {
        let out = self.cluster_dir.write(line, k as u8);
        let mut adder = 0;
        if let Some(owner) = out.remote_fetch_from {
            adder += consts::INTER_REMOTE_FETCH_TICKS;
            self.pending_remote
                .push(RemoteOp::Invalidate(owner as usize, line));
            self.chip_interconnect_pj += 2.0 * consts::INTER_COHERENCE_MSG_PJ;
            self.coherence_messages += 2;
        }
        let others = match out.remote_fetch_from {
            Some(owner) => out.invalidate_mask & !(1u64 << owner),
            None => out.invalidate_mask,
        };
        if others != 0 {
            adder += consts::INTER_INVALIDATE_TICKS;
            for kk in 0..self.clusters.len() {
                if kk != k && (others >> kk) & 1 == 1 {
                    self.pending_remote.push(RemoteOp::Invalidate(kk, line));
                    self.chip_interconnect_pj += consts::INTER_COHERENCE_MSG_PJ;
                    self.coherence_messages += 1;
                }
            }
        }
        adder
    }

    /// The read path below a cluster's L1: inter-cluster directory, the
    /// cluster L2, the L3, then main memory. Returns the tick the data is
    /// back at the cluster's L1 and the state it should be installed in.
    fn cluster_read_path(&mut self, k: usize, line: u64, earliest: u64) -> (u64, LineState) {
        let out = self.cluster_dir.read(line, k as u8);
        // Prior holders may hold the line Exclusive; downgrade them so
        // later silent upgrades stay coherent.
        if out.prior_sharers != 0 {
            for kk in 0..self.clusters.len() {
                if kk != k && (out.prior_sharers >> kk) & 1 == 1 {
                    self.pending_remote.push(RemoteOp::Downgrade(kk, line));
                }
            }
        }
        if let Some(owner) = out.remote_fetch_from {
            self.pending_remote
                .push(RemoteOp::Downgrade(owner as usize, line));
            self.coherence_messages += 2;
            // Request and response cross the mesh; the remote L2 lookup
            // sits between them.
            let at_owner = self.mesh.traverse(
                Endpoint::Cluster(k),
                Endpoint::Cluster(owner as usize),
                earliest,
            );
            let back = self.mesh.traverse(
                Endpoint::Cluster(owner as usize),
                Endpoint::Cluster(k),
                at_owner + consts::REMOTE_LOOKUP_TICKS,
            );
            // The line also lands in our L2 on the way in.
            let l2_addr = self.clusters[k].l2.block_addr(line);
            self.clusters[k].l2.fill(l2_addr, false);
            return (back, LineState::Shared);
        }
        let fill_state = out.fill_state;
        let l2_addr = self.clusters[k].l2.block_addr(line);
        let (t2, l2_hit) = self.clusters[k].l2.read(l2_addr, earliest);
        if l2_hit {
            return (t2, fill_state);
        }
        let l3_addr = self.l3.block_addr(line);
        let at_l3 = self.mesh.traverse(Endpoint::Cluster(k), Endpoint::L3, t2);
        let (t3, l3_hit) = self.l3.read(l3_addr, at_l3);
        let below = if l3_hit {
            t3
        } else {
            let tm = self.mem.read(t3);
            self.l3.fill(l3_addr, false);
            tm
        };
        if let Some(ev) = self.clusters[k].l2.fill(l2_addr, false) {
            if ev.dirty {
                // Victim drains when the eviction is decided (the tag
                // lookup), not when the miss data returns; it also crosses
                // the mesh.
                let wb_at_l3 = self.mesh.traverse(Endpoint::Cluster(k), Endpoint::L3, t2);
                self.l3.write(self.l3.block_addr(ev.addr), wb_at_l3);
            }
        }
        let back = self
            .mesh
            .traverse(Endpoint::L3, Endpoint::Cluster(k), below);
        (back, fill_state)
    }

    // ---------------------------------------------------------------- core cycle

    fn exec_core_cycle(&mut self, k: usize, c: usize, now: u64) {
        // The shared-L1 organisation runs the same cluster-local function
        // the sharded loop runs on workers — one code path, two drivers —
        // with the chip-global sync half applied right here (the
        // sequential order the sharded loop's ordered replay reproduces).
        if self.config.l1_org == L1Org::SharedPerCluster {
            let ctx = self.step_ctx();
            let out = exec_core_cycle_shared(&mut self.clusters[k], &ctx, c, now);
            self.context_switches += out.switches;
            if let Some(ps) = out.sync {
                self.apply_sync_op(k, ps, now);
            }
            return;
        }

        // Private-L1 organisation: loads walk the chip-level hierarchy
        // inline and stores push deferred completions mid-issue, so this
        // body stays chip-global (and the sharded loop never runs it —
        // see `shard_width`).
        let mult = {
            let core = &self.clusters[k].cores[c];
            if !core.active || !now.is_multiple_of(core.mult) {
                return;
            }
            core.mult
        };
        // The clock network toggles every cycle the core is powered,
        // stalled or not; only power gating (consolidation) removes it.
        // Counted as an integer (energy = count × clock_pj at read time)
        // so the fast path can batch idle boundaries bit-identically.
        self.clusters[k].clock_cycles += 1;
        if now < self.clusters[k].cores[c].stall_until {
            return;
        }

        // Context-switch decision. Hardware-stacked virtual cores behave
        // like fine-grained multithreading: the register banks of all
        // hosted threads stay resident, so when the current thread cannot
        // issue this cycle the core selects a runnable sibling and executes
        // it in the *same* cycle (the paper's "hardware context switches";
        // the expensive case is migration *between* cores). The OS variant
        // pays its full quantum-switch cost and only reconsiders a blocked
        // thread at quantum granularity.
        let hardware = self.config.ctx_switch == CtxSwitchModel::Hardware;
        let ctx_threshold = 2 * self.ctx_cost_core_cycles * mult;
        let switch = {
            let cluster = &self.clusters[k];
            let core = &cluster.cores[c];
            if core.assigned.is_empty() {
                return;
            }
            core.pick_switch_with(
                |i| cluster.vcores[core.assigned[i]].runnable(now),
                |i| {
                    let v = &cluster.vcores[core.assigned[i]];
                    if hardware {
                        !v.runnable(now)
                    } else {
                        v.blocked_on_sync()
                            || matches!(v.state, VcState::StallUntil(t) if t > now + ctx_threshold)
                    }
                },
            )
        };
        if let Some(next) = switch {
            let core = &mut self.clusters[k].cores[c];
            core.current = next;
            core.slice_left = self.slice_core_cycles;
            self.context_switches += 1;
            if !hardware {
                core.stall_until = now + self.ctx_cost_core_cycles * mult;
                return;
            }
            // Hardware: fall through and issue from the new thread now.
        }

        let vc_id = {
            let core = &mut self.clusters[k].cores[c];
            if core.slice_left != u64::MAX {
                // Semantic clamp (audited): an expired slice stays
                // expired until the next switch refills it.
                core.slice_left = core.slice_left.saturating_sub(1);
            }
            core.assigned[core.current]
        };
        if !self.clusters[k].vcores[vc_id].runnable(now) {
            return;
        }
        self.clusters[k].vcores[vc_id].state = VcState::Ready;

        let mut issued_any = false;
        let mut issued_count = 0u32;
        let mut mem_issued = false;
        for _slot in 0..2 {
            let op = {
                let vc = &mut self.clusters[k].vcores[vc_id];
                match vc.held.take() {
                    Some(op) => op,
                    None => vc.gen.next_op(),
                }
            };
            match op {
                Op::Int => {
                    self.retire(k, vc_id);
                    self.charge_core(k, self.instr_e.base_pj + self.instr_e.int_pj);
                    issued_any = true;
                    issued_count += 1;
                }
                Op::Fp => {
                    self.retire(k, vc_id);
                    self.charge_core(k, self.instr_e.base_pj + self.instr_e.fp_pj);
                    issued_any = true;
                    issued_count += 1;
                }
                Op::Branch { mispredict } => {
                    self.retire(k, vc_id);
                    self.charge_core(k, self.instr_e.base_pj + self.instr_e.branch_pj);
                    issued_any = true;
                    issued_count += 1;
                    if mispredict {
                        self.clusters[k].vcores[vc_id].state = VcState::StallUntil(
                            now + consts::MISPREDICT_PENALTY_CORE_CYCLES * mult,
                        );
                        break;
                    }
                }
                Op::Idle { cycles } => {
                    self.clusters[k].vcores[vc_id].state =
                        VcState::StallUntil(now + cycles as u64 * mult);
                    break;
                }
                Op::Load { addr } => {
                    if mem_issued {
                        self.clusters[k].vcores[vc_id].held = Some(op);
                        break;
                    }
                    self.retire(k, vc_id);
                    self.charge_core(k, self.instr_e.base_pj + self.instr_e.mem_pj);
                    issued_any = true;
                    issued_count += 1;
                    self.private_load(k, c, vc_id, addr, now, mult);
                    break;
                }
                Op::Store { addr } => {
                    if mem_issued {
                        self.clusters[k].vcores[vc_id].held = Some(op);
                        break;
                    }
                    if !self.clusters[k].cores[c].store_buffer_has_room() {
                        let vc = &mut self.clusters[k].vcores[vc_id];
                        vc.held = Some(op);
                        vc.state = VcState::StallUntil(now + mult);
                        break;
                    }
                    self.retire(k, vc_id);
                    self.charge_core(k, self.instr_e.base_pj + self.instr_e.mem_pj);
                    issued_any = true;
                    issued_count += 1;
                    mem_issued = true;
                    let completion = self.private_store(k, c, addr, now);
                    self.clusters[k].cores[c].pending_stores += 1;
                    self.deferred
                        .push(completion, Deferred::FreeStoreSlot(k, c));
                }
                Op::Barrier { id } => {
                    self.retire(k, vc_id);
                    self.charge_core(k, self.instr_e.base_pj);
                    issued_any = true;
                    issued_count += 1;
                    self.apply_sync_op(
                        k,
                        PendingSyncOp {
                            vc: vc_id,
                            mult,
                            kind: SyncKind::Barrier(id),
                        },
                        now,
                    );
                    break;
                }
                Op::LockAcq { lock } => {
                    self.retire(k, vc_id);
                    self.charge_core(k, self.instr_e.base_pj + self.instr_e.mem_pj);
                    issued_any = true;
                    issued_count += 1;
                    self.apply_sync_op(
                        k,
                        PendingSyncOp {
                            vc: vc_id,
                            mult,
                            kind: SyncKind::LockAcq(lock),
                        },
                        now,
                    );
                    break;
                }
                Op::LockRel { lock } => {
                    self.retire(k, vc_id);
                    self.charge_core(k, self.instr_e.base_pj + self.instr_e.mem_pj);
                    issued_any = true;
                    issued_count += 1;
                    self.apply_sync_op(
                        k,
                        PendingSyncOp {
                            vc: vc_id,
                            mult,
                            kind: SyncKind::LockRel(lock),
                        },
                        now,
                    );
                    break;
                }
                Op::Done => {
                    self.clusters[k].vcores[vc_id].state = VcState::Finished;
                    break;
                }
            }
        }

        if issued_any {
            self.charge_core(k, self.instr_e.fetch_pj);
            // The L1I array is read once per ~6 sequential instructions
            // (a 32 B line holds 8 fixed-width instructions; the fetch line
            // buffer filters repeat reads, branches refetch early).
            let cluster = &mut self.clusters[k];
            cluster.ifetch_dyn_pj += cluster.l1_costs.i_read_pj * issued_count as f64 / 6.0;
        }
    }

    /// Latency of moving a contended synchronisation line to a new user.
    fn sync_transfer_ticks(&self, same_cluster: bool) -> u64 {
        if !same_cluster {
            consts::INTER_REMOTE_FETCH_TICKS
        } else if self.config.l1_org == L1Org::Private {
            consts::INTRA_REMOTE_FETCH_TICKS
        } else {
            1
        }
    }

    fn release_barrier(&mut self, id: u32, releaser_cluster: usize, now: u64) {
        let private = self.config.l1_org == L1Org::Private;
        let mut msgs = 0u64;
        let mut msg_pj = 0.0;
        for kk in 0..self.clusters.len() {
            let same = kk == releaser_cluster;
            let penalty = if !same {
                consts::INTER_REMOTE_FETCH_TICKS
            } else if private {
                consts::INTRA_REMOTE_FETCH_TICKS
            } else {
                1
            };
            for vc in self.clusters[kk].vcores.iter_mut() {
                if vc.state == VcState::AtBarrier(id) {
                    vc.state = VcState::StallUntil(now + penalty);
                    if !same {
                        msgs += 1;
                        msg_pj += consts::INTER_COHERENCE_MSG_PJ;
                    } else if private {
                        msgs += 1;
                        msg_pj += consts::INTRA_COHERENCE_MSG_PJ;
                    }
                }
            }
        }
        self.coherence_messages += msgs;
        self.chip_interconnect_pj += msg_pj;
    }

    // ------------------------------------------------------------- private L1

    fn private_load(&mut self, k: usize, c: usize, vc_id: usize, addr: u64, now: u64, mult: u64) {
        let (line, hit) = {
            let cluster = &mut self.clusters[k];
            let costs = cluster.l1_costs;
            cluster.ifetch_dyn_pj += costs.d_read_pj;
            cluster.interconnect_pj += costs.shifter_pj;
            if let L1System::Private { l1d, stats, .. } = &mut cluster.l1 {
                let line = l1d[c].block_addr(addr);
                let hit = l1d[c].touch(line).is_some();
                if hit {
                    stats.hits += 1;
                } else {
                    stats.misses += 1;
                }
                (line, hit)
            } else {
                unreachable!("private_load on a shared-L1 cluster")
            }
        };
        if hit {
            // Single-core-cycle hit: the load simply ends the issue group.
            return;
        }

        // Intra-cluster directory.
        let (data_ready, fill_state) = {
            let intra = {
                let cluster = &mut self.clusters[k];
                if let L1System::Private { dir, .. } = &mut cluster.l1 {
                    dir.read(line, c as u8)
                } else {
                    unreachable!()
                }
            };
            if let Some(owner) = intra.remote_fetch_from {
                let cluster = &mut self.clusters[k];
                if let L1System::Private { l1d, .. } = &mut cluster.l1 {
                    l1d[owner as usize].set_state(line, LineState::Shared);
                }
                cluster.interconnect_pj += 2.0 * consts::INTRA_COHERENCE_MSG_PJ;
                self.coherence_messages += 2;
                (now + consts::INTRA_REMOTE_FETCH_TICKS, LineState::Shared)
            } else {
                let (ready, cluster_state) = self.cluster_read_path(k, line, now + 1);
                let state = if cluster_state == LineState::Shared {
                    LineState::Shared
                } else {
                    intra.fill_state
                };
                (ready, state)
            }
        };

        // Fill, handling the victim.
        {
            let cluster = &mut self.clusters[k];
            let evicted = if let L1System::Private { l1d, dir, .. } = &mut cluster.l1 {
                let ev = l1d[c].fill(line, fill_state);
                if let Some(ev) = ev {
                    dir.evict(ev.addr, c as u8);
                }
                ev
            } else {
                unreachable!()
            };
            if let Some(ev) = evicted {
                if ev.dirty {
                    // The victim drains independently of the miss's data
                    // return; scheduling it at the return time would stall
                    // the L2's accept pipeline ~a memory latency per miss.
                    let l2_addr = cluster.l2.block_addr(ev.addr);
                    cluster.l2.write(l2_addr, now);
                }
            }
        }

        self.clusters[k].vcores[vc_id].state =
            VcState::StallUntil(align_boundary(now, mult, data_ready + 1));
    }

    fn private_store(&mut self, k: usize, c: usize, addr: u64, now: u64) -> u64 {
        let write_ticks = self.clusters[k].l1_costs.d_write_ticks;
        let (line, prior) = {
            let cluster = &mut self.clusters[k];
            let costs = cluster.l1_costs;
            cluster.ifetch_dyn_pj += costs.d_write_pj;
            cluster.interconnect_pj += costs.shifter_pj;
            if let L1System::Private { l1d, stats, .. } = &mut cluster.l1 {
                let line = l1d[c].block_addr(addr);
                let prior = l1d[c].touch(line);
                if prior.is_some() {
                    stats.hits += 1;
                } else {
                    stats.misses += 1;
                }
                (line, prior)
            } else {
                unreachable!("private_store on a shared-L1 cluster")
            }
        };

        match prior {
            Some(LineState::Modified) => now + write_ticks,
            Some(LineState::Exclusive) => {
                // Upgrade in place; keep directories exact. The masks are
                // normally empty (Exclusive means sole holder) but stale
                // directory entries from silent evictions are tolerated.
                {
                    let cluster = &mut self.clusters[k];
                    if let L1System::Private { l1d, dir, .. } = &mut cluster.l1 {
                        l1d[c].set_state(line, LineState::Modified);
                        dir.write(line, c as u8);
                    }
                }
                now + write_ticks + self.acquire_cluster_ownership(k, line)
            }
            Some(LineState::Shared) => {
                // Upgrade: invalidate intra-cluster sharers, then get
                // inter-cluster ownership.
                let mut completion = now + write_ticks;
                {
                    let cluster = &mut self.clusters[k];
                    if let L1System::Private { l1d, dir, .. } = &mut cluster.l1 {
                        l1d[c].set_state(line, LineState::Modified);
                        let out = dir.write(line, c as u8);
                        if out.invalidate_mask != 0 {
                            completion += consts::INTRA_INVALIDATE_TICKS;
                            #[allow(clippy::needless_range_loop)] // index guards self-skip
                            for o in 0..l1d.len() {
                                if o != c && (out.invalidate_mask >> o) & 1 == 1 {
                                    l1d[o].invalidate(line);
                                    cluster.interconnect_pj += consts::INTRA_COHERENCE_MSG_PJ;
                                    self.coherence_messages += 1;
                                }
                            }
                        }
                    }
                }
                completion + self.acquire_cluster_ownership(k, line)
            }
            None => {
                // Write miss: get the line with ownership.
                let intra = {
                    let cluster = &mut self.clusters[k];
                    if let L1System::Private { dir, .. } = &mut cluster.l1 {
                        dir.write(line, c as u8)
                    } else {
                        unreachable!()
                    }
                };
                let mut ready = if let Some(owner) = intra.remote_fetch_from {
                    let cluster = &mut self.clusters[k];
                    if let L1System::Private { l1d, .. } = &mut cluster.l1 {
                        l1d[owner as usize].invalidate(line);
                    }
                    cluster.interconnect_pj += 2.0 * consts::INTRA_COHERENCE_MSG_PJ;
                    self.coherence_messages += 2;
                    now + consts::INTRA_REMOTE_FETCH_TICKS
                } else {
                    self.cluster_read_path(k, line, now + 1).0
                };
                if intra.invalidate_mask != 0 {
                    let cluster = &mut self.clusters[k];
                    if let L1System::Private { l1d, .. } = &mut cluster.l1 {
                        #[allow(clippy::needless_range_loop)] // index guards self-skip
                        for o in 0..l1d.len() {
                            if o != c && (intra.invalidate_mask >> o) & 1 == 1 {
                                l1d[o].invalidate(line);
                                cluster.interconnect_pj += consts::INTRA_COHERENCE_MSG_PJ;
                                self.coherence_messages += 1;
                            }
                        }
                    }
                    ready += consts::INTRA_INVALIDATE_TICKS;
                }
                ready += self.acquire_cluster_ownership(k, line);
                // Fill dirty.
                {
                    let cluster = &mut self.clusters[k];
                    let evicted = if let L1System::Private { l1d, dir, .. } = &mut cluster.l1 {
                        let ev = l1d[c].fill(line, LineState::Modified);
                        if let Some(ev) = ev {
                            dir.evict(ev.addr, c as u8);
                        }
                        ev
                    } else {
                        unreachable!()
                    };
                    if let Some(ev) = evicted {
                        if ev.dirty {
                            // As in the load path: victim drain is
                            // independent of the miss data return.
                            let l2_addr = cluster.l2.block_addr(ev.addr);
                            cluster.l2.write(l2_addr, now);
                        }
                    }
                }
                ready + write_ticks
            }
        }
    }

    // --------------------------------------------------------------- helpers

    #[inline]
    fn retire(&mut self, k: usize, vc_id: usize) {
        self.clusters[k].vcores[vc_id].retired += 1;
        self.clusters[k].instructions += 1;
    }

    #[inline]
    fn charge_core(&mut self, k: usize, pj: f64) {
        self.clusters[k].core_dyn_pj += pj;
    }

    // --------------------------------------------------------- consolidation

    /// Sets the number of active physical cores in cluster `k`, migrating
    /// virtual cores as needed (§III-C). Requires the configuration to have
    /// consolidation enabled.
    pub fn set_active_cores(&mut self, k: usize, count: usize) {
        assert!(
            self.config.consolidation,
            "consolidation disabled in this configuration"
        );
        let n = self.clusters[k].cores.len();
        // Decommissioned cores can never be re-activated: the reachable
        // target range is bounded by the healthy count.
        let count = count.clamp(1, self.clusters[k].healthy_cores().max(1));
        if count == self.clusters[k].active_cores {
            return;
        }
        let from_cores = self.clusters[k].active_cores;
        let now = self.tick;
        let ranking = self.clusters[k].efficiency_ranking();
        let target: Vec<bool> = {
            let mut t = vec![false; n];
            for &c in ranking.iter().take(count) {
                t[c] = true;
            }
            t
        };

        // Power-off pass: move orphaned virtual cores to the least-loaded
        // active target (ties toward the more efficient core).
        for c in 0..n {
            if !target[c] && self.clusters[k].cores[c].active {
                let orphans = std::mem::take(&mut self.clusters[k].cores[c].assigned);
                self.clusters[k].cores[c].active = false;
                self.clusters[k].cores[c].current = 0;
                for vc in orphans {
                    let host = self.pick_host(k, &ranking, &target);
                    self.migrate_vcore(k, vc, host, now);
                }
            }
        }

        // Power-on pass: wake targets and rebalance from the most loaded.
        for &c in ranking.iter().take(count) {
            if !self.clusters[k].cores[c].active {
                let core = &mut self.clusters[k].cores[c];
                core.active = true;
                core.stall_until = now + consts::POWER_ON_STALL_CORE_CYCLES * core.mult;
                loop {
                    let (max_c, max_load) = {
                        let cluster = &self.clusters[k];
                        let mut best = (c, cluster.cores[c].assigned.len());
                        for o in 0..n {
                            if cluster.cores[o].active && cluster.cores[o].assigned.len() > best.1 {
                                best = (o, cluster.cores[o].assigned.len());
                            }
                        }
                        best
                    };
                    let my_load = self.clusters[k].cores[c].assigned.len();
                    if max_c == c || max_load <= my_load + 1 {
                        break;
                    }
                    let vc = self.clusters[k].cores[max_c]
                        .assigned
                        .pop()
                        .expect("load > 0");
                    // If the donor's current index now dangles, clamp it.
                    let donor = &mut self.clusters[k].cores[max_c];
                    if donor.current >= donor.assigned.len() {
                        donor.current = 0;
                    }
                    self.migrate_vcore(k, vc, c, now);
                }
            }
        }

        // Slice bookkeeping: single-tenant cores never slice.
        for c in 0..n {
            let core = &mut self.clusters[k].cores[c];
            if core.assigned.len() > 1 {
                if core.slice_left == u64::MAX {
                    core.slice_left = self.slice_core_cycles;
                }
            } else {
                core.slice_left = u64::MAX;
            }
            if core.current >= core.assigned.len() {
                core.current = 0;
            }
        }

        self.clusters[k].active_cores = count;
        self.clusters[k].refresh_core_leakage(now, self.config.core_vdd, &self.core_model);
        let total_active: usize = self.clusters.iter().map(|cl| cl.active_cores).sum();
        self.consolidation_trace.push((now, total_active));
        self.tracer.emit(|| {
            TraceEvent::at(
                now,
                TraceKind::Consolidation {
                    cluster: k,
                    from: from_cores,
                    to: count,
                    total_active,
                },
            )
        });
        debug_assert!(self.check_assignment_invariant(k));
    }

    /// Chooses the host core for a migrating virtual core: the least-loaded
    /// active target, ties broken toward the most efficient (§III-C's
    /// round-robin from the fastest).
    fn pick_host(&self, k: usize, ranking: &[usize], target: &[bool]) -> usize {
        let cluster = &self.clusters[k];
        let mut best: Option<usize> = None;
        for &c in ranking {
            if target[c] {
                match best {
                    None => best = Some(c),
                    Some(b)
                        if cluster.cores[c].assigned.len() < cluster.cores[b].assigned.len() =>
                    {
                        best = Some(c)
                    }
                    _ => {}
                }
            }
        }
        best.expect("at least one active core")
    }

    fn migrate_vcore(&mut self, k: usize, vc: usize, host: usize, now: u64) {
        let mult = self.clusters[k].cores[host].mult;
        self.clusters[k].cores[host].assigned.push(vc);
        let penalty_cycles = consts::MIGRATION_DRAIN_CORE_CYCLES
            + consts::MIGRATION_TRANSFER_CORE_CYCLES
            + consts::MIGRATION_COLD_STATE_CORE_CYCLES;
        let v = &mut self.clusters[k].vcores[vc];
        // Threads blocked on sync or an outstanding read keep their state;
        // the penalty applies only to runnable/stalled threads.
        match v.state {
            VcState::Ready => v.state = VcState::StallUntil(now + penalty_cycles * mult),
            VcState::StallUntil(t) => {
                v.state = VcState::StallUntil(t.max(now + penalty_cycles * mult))
            }
            _ => {}
        }
        self.migrations += 1;
        self.tracer.emit(|| {
            TraceEvent::at(
                now,
                TraceKind::Migration {
                    cluster: k,
                    vcore: vc,
                    to_core: host,
                },
            )
        });
    }

    fn check_assignment_invariant(&self, k: usize) -> bool {
        let cluster = &self.clusters[k];
        let mut seen = vec![0u32; cluster.vcores.len()];
        for (c, core) in cluster.cores.iter().enumerate() {
            if core.faulty && core.active {
                eprintln!("decommissioned core {c} is still active");
                return false;
            }
            if !core.active {
                if !core.assigned.is_empty() {
                    eprintln!("inactive core {c} still hosts vcores");
                    return false;
                }
                continue;
            }
            for &vc in &core.assigned {
                seen[vc] += 1;
            }
        }
        seen.iter().all(|&s| s == 1)
    }

    // ------------------------------------------------------ fault injection

    /// Epoch-boundary fault maintenance: scrub shared-L1 arrays and draw
    /// transient core faults. Keyed on a per-chip epoch counter so oracle
    /// clones replay identical fault universes.
    fn epoch_fault_maintenance(&mut self) {
        let fc = self.config.faults;
        let now = self.tick;
        self.fault_epochs += 1;
        let epoch = self.fault_epochs;
        if fc.scrub {
            for cl in &mut self.clusters {
                if let L1System::Shared(sh) = &mut cl.l1 {
                    sh.scrub_with(now, &mut self.scrub_scratch);
                }
            }
            debug_assert!(self.scrub_scratch.is_empty(), "scrub scratch leaked");
        }
        if !fc.core_faults_enabled() {
            return;
        }
        for k in 0..self.clusters.len() {
            for c in 0..self.clusters[k].cores.len() {
                let core = &self.clusters[k].cores[c];
                if core.faulty {
                    continue;
                }
                let global = k * self.config.cores_per_cluster + c;
                let seeded = fc.seeded_bad_core == Some(global);
                // Stochastic transients strike executing cores; the seeded
                // defect fails its epoch-boundary self-test even while
                // power-gated.
                if !seeded && !core.active {
                    continue;
                }
                let hit = if seeded {
                    true
                } else if fc.core_fault_rate > 0.0 {
                    // Slow (high-Vth) cores are the variation-marginal
                    // ones at NT voltage: scale the per-epoch rate with
                    // the square of the period multiplier (mult 4 ≙ the
                    // fastest NT bin).
                    let scale = (core.mult * core.mult) as f64 / 16.0;
                    let p = (fc.core_fault_rate * scale).min(1.0);
                    hash::unit_f64(hash::combine(&[self.fault_key, k as u64, c as u64, epoch])) < p
                } else {
                    false
                };
                if hit {
                    self.inject_core_fault(k, c);
                }
            }
        }
    }

    /// Injects one transient fault on core `c` of cluster `k`: the
    /// pipeline flushes and architectural state repairs from the
    /// checkpoint (a bounded stall). Crossing the configured threshold
    /// decommissions the core.
    pub fn inject_core_fault(&mut self, k: usize, c: usize) {
        let now = self.tick;
        let core = &mut self.clusters[k].cores[c];
        core.fault_count += 1;
        core.stall_until = core
            .stall_until
            .max(now + consts::CORE_FAULT_RECOVERY_CORE_CYCLES * core.mult);
        self.core_fault_stats.summary.core_faults += 1;
        self.core_fault_stats.record(
            now,
            0,
            FaultEventKind::CoreFault {
                cluster: k,
                core: c,
            },
        );
        let fault_count = self.clusters[k].cores[c].fault_count;
        self.tracer.emit(|| {
            TraceEvent::at(
                now,
                TraceKind::CoreFault {
                    cluster: k,
                    core: c,
                    fault_count,
                },
            )
        });
        if self.clusters[k].cores[c].fault_count >= self.config.faults.core_fault_threshold {
            self.decommission_core(k, c);
        }
    }

    /// Permanently decommissions core `c` of cluster `k`: powered off
    /// like a consolidation power-off, its virtual cores remapped to
    /// healthy hosts, and excluded from future rankings — the chip
    /// degrades throughput instead of corrupting results. When the core
    /// is the cluster's last healthy active one, the most efficient
    /// healthy inactive core is woken to take over first; if none exists
    /// the chip limps on the failing core (degrade, never halt) and the
    /// call returns `false`.
    pub fn decommission_core(&mut self, k: usize, c: usize) -> bool {
        if self.clusters[k].cores[c].faulty {
            return false;
        }
        let now = self.tick;
        let n = self.clusters[k].cores.len();
        let healthy_active = (0..n)
            .filter(|&o| self.clusters[k].cores[o].active && !self.clusters[k].cores[o].faulty)
            .count();
        if self.clusters[k].cores[c].active && healthy_active <= 1 {
            let ranking = self.clusters[k].efficiency_ranking();
            let Some(&wake) = ranking
                .iter()
                .find(|&&o| o != c && !self.clusters[k].cores[o].active)
            else {
                return false;
            };
            let core = &mut self.clusters[k].cores[wake];
            core.active = true;
            core.stall_until = now + consts::POWER_ON_STALL_CORE_CYCLES * core.mult;
            self.clusters[k].active_cores += 1;
        }
        let core = &mut self.clusters[k].cores[c];
        core.faulty = true;
        let was_active = core.active;
        core.active = false;
        core.current = 0;
        core.slice_left = u64::MAX;
        let orphans = std::mem::take(&mut core.assigned);
        if was_active {
            self.clusters[k].active_cores -= 1;
        }
        // Remap tenants exactly like a consolidation power-off; the
        // ranking already excludes faulty cores.
        let ranking = self.clusters[k].efficiency_ranking();
        let target: Vec<bool> = {
            let mut t = vec![false; n];
            for &o in &ranking {
                if self.clusters[k].cores[o].active {
                    t[o] = true;
                }
            }
            t
        };
        for vc in orphans {
            let host = self.pick_host(k, &ranking, &target);
            self.migrate_vcore(k, vc, host, now);
        }
        // Slice bookkeeping: single-tenant cores never slice.
        for o in 0..n {
            let core = &mut self.clusters[k].cores[o];
            if core.assigned.len() > 1 {
                if core.slice_left == u64::MAX {
                    core.slice_left = self.slice_core_cycles;
                }
            } else {
                core.slice_left = u64::MAX;
            }
            if core.current >= core.assigned.len() {
                core.current = 0;
            }
        }
        self.clusters[k].refresh_core_leakage(now, self.config.core_vdd, &self.core_model);
        let total_active: usize = self.clusters.iter().map(|cl| cl.active_cores).sum();
        self.consolidation_trace.push((now, total_active));
        self.core_fault_stats.summary.cores_decommissioned += 1;
        self.core_fault_stats.record(
            now,
            0,
            FaultEventKind::CoreDecommissioned {
                cluster: k,
                core: c,
            },
        );
        self.tracer.emit(|| {
            TraceEvent::at(
                now,
                TraceKind::Decommission {
                    cluster: k,
                    core: c,
                },
            )
        });
        debug_assert!(self.check_assignment_invariant(k));
        true
    }

    // --------------------------------------------------------------- epochs

    /// Runs one consolidation epoch: until `epoch_instructions × clusters`
    /// further instructions retire chip-wide (or the workload finishes).
    ///
    /// When [`Chip::set_cluster_workers`] granted a width > 1 and the
    /// configuration is eligible (see `shard_width`), the epoch's ticks
    /// run cluster-sharded on a worker team — bit-identically to the
    /// sequential loop by contract.
    pub fn run_epoch(&mut self) -> EpochReport {
        self.with_shard(|chip, shard| chip.run_epoch_with(shard, &mut NoProbe))
    }

    /// [`Chip::run_epoch`], sequential, with wall time attributed to the
    /// five hot-path phases through `profiler` (the `respin-profile/v1`
    /// data source). Bit-identical to an unprofiled epoch: probes are
    /// observation-only and the sequential loop is the reference
    /// semantics.
    pub fn run_epoch_profiled(&mut self, profiler: &mut PhaseProfiler<'_>) -> EpochReport {
        self.run_epoch_with(None, profiler)
    }

    fn run_epoch_with<P: StepProbe>(
        &mut self,
        mut shard: Option<&mut ShardCtx<'_>>,
        probe: &mut P,
    ) -> EpochReport {
        let start_tick = self.tick;
        // Trace bookkeeping is only captured when a sink is installed —
        // the disabled path does no extra work at all.
        let trace_snap = if self.tracer.enabled() {
            Some(self.epoch_trace_snapshot())
        } else {
            None
        };
        let start_instr: Vec<u64> = self.clusters.iter().map(|c| c.instructions).collect();
        let start_energy: Vec<f64> = self
            .clusters
            .iter()
            .map(|c| c.energy_pj(start_tick))
            .collect();
        let start_total: u64 = start_instr.iter().sum();
        let target = self.config.epoch_instructions * self.clusters.len() as u64;

        while !self.finished() && self.total_instructions() - start_total < target {
            assert!(
                self.tick - start_tick < MAX_EPOCH_TICKS,
                "epoch exceeded {MAX_EPOCH_TICKS} ticks — simulator deadlock?"
            );
            self.advance_with(shard.as_deref_mut(), probe);
        }

        // Epoch-boundary fault maintenance runs before the report is
        // assembled so scrub energy lands in this epoch's accounting.
        if self.config.faults.enabled() || self.config.faults.scrub {
            self.epoch_fault_maintenance();
        }

        let end_tick = self.tick;
        let mut report = EpochReport {
            cluster_instructions: Vec::with_capacity(self.clusters.len()),
            cluster_energy_pj: Vec::with_capacity(self.clusters.len()),
            active_cores: Vec::with_capacity(self.clusters.len()),
            cluster_epi: Vec::with_capacity(self.clusters.len()),
            healthy_cores: Vec::with_capacity(self.clusters.len()),
            finished: self.finished(),
            start_tick,
            end_tick,
        };
        for (k, cluster) in self.clusters.iter_mut().enumerate() {
            let instr = cluster.instructions - start_instr[k];
            let energy = cluster.energy_pj(end_tick) - start_energy[k];
            report.cluster_instructions.push(instr);
            report.cluster_energy_pj.push(energy);
            report.active_cores.push(cluster.active_cores);
            report.healthy_cores.push(cluster.healthy_cores());
            report.cluster_epi.push(if instr == 0 {
                f64::INFINITY
            } else {
                energy / instr as f64
            });
            // Figure 14 accounting.
            cluster.epoch_count += 1;
            cluster.active_sum += cluster.active_cores as u64;
            cluster.active_min = cluster.active_min.min(cluster.active_cores);
            cluster.active_max = cluster.active_max.max(cluster.active_cores);
        }
        if let Some(snap) = &trace_snap {
            self.emit_epoch_trace(snap, &report);
        }
        // Fault maintenance and report assembly above belong to the
        // between-steps bucket (no-op under NoProbe).
        probe.mark(Phase::EpochMaintenance);
        report
    }

    /// Epoch-start counters the trace layer diffs against at epoch end.
    /// Only captured when tracing is enabled.
    fn epoch_trace_snapshot(&self) -> EpochTraceSnapshot {
        EpochTraceSnapshot {
            shared_l1: self
                .clusters
                .iter()
                .map(|cl| match &cl.l1 {
                    L1System::Shared(sh) => Some(sh.stats().clone()),
                    L1System::Private { .. } => None,
                })
                .collect(),
            l2: self.clusters.iter().map(|cl| cl.l2.stats).collect(),
            l3: self.l3.stats,
            faults: self.fault_summary_now(),
            fault_trace_len: self
                .clusters
                .iter()
                .map(|cl| match &cl.l1 {
                    L1System::Shared(sh) => sh.fault_stats().map_or(0, |fs| fs.trace.len()),
                    L1System::Private { .. } => 0,
                })
                .collect(),
        }
    }

    /// Current aggregate fault counters (core-level plus every shared-L1
    /// array), without assembling full [`ChipStats`].
    fn fault_summary_now(&self) -> FaultSummary {
        let mut s = self.core_fault_stats.summary;
        for cl in &self.clusters {
            if let L1System::Shared(sh) = &cl.l1 {
                if let Some(fs) = sh.fault_stats() {
                    s.merge(&fs.summary);
                }
            }
        }
        s
    }

    /// Emits the epoch-series records for the epoch that just ended:
    /// per-cluster compute and cache samples, the chip-wide rollup, a
    /// fault-counter delta when fault machinery is configured, and any
    /// new cell-level fault events (SECDED corrections etc.) from the
    /// bounded per-array traces.
    fn emit_epoch_trace(&self, snap: &EpochTraceSnapshot, report: &EpochReport) {
        // `run_epoch` just incremented every cluster's epoch counter, so
        // the 0-based index of the epoch that ended is count - 1 (the
        // saturation is audited-unreachable — the counter is ≥ 1 here —
        // and only guards the arithmetic, never masks state).
        let epoch = self
            .clusters
            .first()
            .map_or(0, |c| c.epoch_count.saturating_sub(1));
        let end_tick = report.end_tick;
        for (k, cl) in self.clusters.iter().enumerate() {
            self.tracer.emit(|| {
                TraceEvent::at(
                    end_tick,
                    TraceKind::ClusterEpoch {
                        cluster: k,
                        epoch,
                        instructions: report.cluster_instructions[k],
                        energy_pj: report.cluster_energy_pj[k],
                        // JSON-safe: an idle cluster's EPI is +inf.
                        epi_pj: respin_trace::finite_or_zero(report.cluster_epi[k]),
                        active_cores: report.active_cores[k],
                        healthy_cores: report.healthy_cores[k],
                        core_freq_mhz: cl.core_freq_mhz(),
                    },
                )
            });
            // Cache samples are defined for the shared-L1 organisation
            // (the paper's §II-A controller); private configurations
            // still get the cluster/chip series above.
            if let (L1System::Shared(sh), Some(l1_start)) = (&cl.l1, &snap.shared_l1[k]) {
                let d = sh.stats().delta_since(l1_start);
                let l2 = cl.l2.stats.delta_since(&snap.l2[k]);
                self.tracer.emit(|| {
                    TraceEvent::at(
                        end_tick,
                        TraceKind::CacheEpoch {
                            cluster: k,
                            epoch,
                            reads: d.reads,
                            read_misses: d.read_misses,
                            half_misses: d.half_misses,
                            writes: d.writes,
                            half_miss_rate: d.half_miss_fraction(),
                            arbiter_occupancy: d.arbiter_occupancy(),
                            l2_miss_rate: l2.miss_rate(),
                        },
                    )
                });
            }
        }
        let instructions: u64 = report.cluster_instructions.iter().sum();
        let energy_pj: f64 = report.cluster_energy_pj.iter().sum();
        let l3 = self.l3.stats.delta_since(&snap.l3);
        let active_cores: usize = report.active_cores.iter().sum();
        self.tracer.emit(|| {
            TraceEvent::at(
                end_tick,
                TraceKind::ChipEpoch {
                    epoch,
                    instructions,
                    energy_pj,
                    epi_pj: if instructions == 0 {
                        0.0 // JSON-safe stand-in for "undefined".
                    } else {
                        energy_pj / instructions as f64
                    },
                    l3_miss_rate: l3.miss_rate(),
                    active_cores,
                },
            )
        });
        if self.config.faults.enabled() || self.config.faults.scrub {
            let d = self.fault_summary_now().delta_since(&snap.faults);
            self.tracer.emit(|| {
                TraceEvent::at(
                    end_tick,
                    TraceKind::FaultEpoch {
                        epoch,
                        write_faults: d.write_faults,
                        write_retries: d.write_retries,
                        retention_flips: d.retention_flips,
                        ecc_corrected: d.ecc_corrected,
                        ecc_detected: d.ecc_detected,
                        uncorrected_escapes: d.uncorrected_escapes,
                        scrubbed_lines: d.scrubbed_lines,
                        scrub_rewrites: d.scrub_rewrites,
                        recovery_energy_pj: d.recovery_energy_pj,
                    },
                )
            });
            // Forward new cell-level events (the traces are bounded, so
            // a long run forwards at most `TRACE_CAP` per array).
            for (k, cl) in self.clusters.iter().enumerate() {
                let L1System::Shared(sh) = &cl.l1 else {
                    continue;
                };
                let Some(fs) = sh.fault_stats() else {
                    continue;
                };
                for ev in fs.trace.iter().skip(snap.fault_trace_len[k]) {
                    self.tracer.emit(|| {
                        TraceEvent::at(
                            ev.tick,
                            TraceKind::FaultCell {
                                cluster: k,
                                kind: fault_kind_label(&ev.kind).to_string(),
                                addr: ev.addr,
                            },
                        )
                    });
                }
            }
        }
    }

    /// Runs the chip until `total_instructions` have retired chip-wide,
    /// then zeroes every statistic and energy account: caches stay warm,
    /// threads keep their streams, but measurement starts fresh. This is
    /// the "startup phase excluded" treatment the paper applies — without
    /// it, short synthetic runs are dominated by compulsory misses.
    pub fn run_warmup(&mut self, total_instructions: u64) {
        self.with_shard(|chip, mut shard| {
            while !chip.finished() && chip.total_instructions() < total_instructions {
                chip.advance_with(shard.as_deref_mut(), &mut NoProbe);
            }
        });
        self.reset_measurements();
    }

    /// Zeroes all statistics and energy accounts at the current tick.
    pub fn reset_measurements(&mut self) {
        let now = self.tick;
        self.measure_start_tick = now;
        for cl in &mut self.clusters {
            cl.instructions = 0;
            cl.core_dyn_pj = 0.0;
            cl.clock_cycles = 0;
            cl.ifetch_dyn_pj = 0.0;
            cl.interconnect_pj = 0.0;
            cl.core_leak.set_power(now, cl.core_leak.power_mw());
            cl.core_leak.rebase(now);
            cl.measure_start_tick = now;
            cl.l2.reset_measurements();
            match &mut cl.l1 {
                L1System::Shared(sh) => sh.reset_measurements(),
                L1System::Private { stats, .. } => *stats = crate::stats::LevelStats::default(),
            }
            cl.epoch_count = 0;
            cl.active_sum = 0;
            cl.active_min = usize::MAX;
            cl.active_max = 0;
        }
        self.l3.reset_measurements();
        self.mesh.reset_measurements();
        self.mem.reset_measurements();
        self.chip_interconnect_pj = 0.0;
        self.coherence_messages = 0;
        self.migrations = 0;
        self.context_switches = 0;
        // Fault *measurements* reset; the fault-epoch counter and any
        // decommissioned-core state are physical history and persist.
        self.core_fault_stats.reset();
        let total_active: usize = self.clusters.iter().map(|cl| cl.active_cores).sum();
        self.consolidation_trace = vec![(now, total_active)];
    }

    /// Runs to completion with no consolidation decisions. One worker
    /// team (when sharding applies) spans every epoch.
    pub fn run_to_completion(&mut self) -> RunResult {
        self.with_shard(|chip, mut shard| {
            while !chip.finished() {
                chip.run_epoch_with(shard.as_deref_mut(), &mut NoProbe);
            }
        });
        self.result()
    }

    /// Assembles the final result at the current tick. Ticks/time cover
    /// the measured window (everything after the last warm-up reset).
    pub fn result(&self) -> RunResult {
        let ticks = self.tick - self.measure_start_tick;
        RunResult {
            ticks,
            time_ps: ticks as f64 * consts::CACHE_PERIOD_PS,
            instructions: self.total_instructions(),
            energy: self.energy_breakdown(),
            stats: self.stats(),
        }
    }

    /// Current energy breakdown over the measured window.
    pub fn energy_breakdown(&self) -> EnergyBreakdown {
        let t = self.tick;
        let measured = (t - self.measure_start_tick) as f64;
        let mut b = EnergyBreakdown::default();
        for cl in &self.clusters {
            b.core_dynamic_pj += cl.core_dyn_pj + cl.clock_cycles as f64 * cl.clock_pj;
            b.core_leakage_pj += cl.core_leak.energy_pj(t);
            b.cache_leakage_pj += cl.cache_leak_mw * measured * consts::CACHE_PERIOD_PS / 1_000.0;
            b.cache_dynamic_pj += cl.ifetch_dyn_pj + cl.l2.dyn_energy_pj;
            b.interconnect_pj += cl.interconnect_pj;
            if let L1System::Shared(s) = &cl.l1 {
                b.cache_dynamic_pj += s.dyn_energy_pj;
                b.interconnect_pj += s.shifter_acc_pj;
            }
        }
        b.cache_dynamic_pj += self.l3.dyn_energy_pj;
        b.cache_leakage_pj += self.l3_leak_mw * measured * consts::CACHE_PERIOD_PS / 1_000.0;
        b.interconnect_pj += self.chip_interconnect_pj + self.mesh.energy_acc_pj;
        b.offchip_pj = self.mem.energy_pj();
        b
    }

    /// Assembles chip statistics (measured window).
    pub fn stats(&self) -> ChipStats {
        let mut s = ChipStats::new(self.clusters.len());
        s.ticks = self.tick - self.measure_start_tick;
        for (k, cl) in self.clusters.iter().enumerate() {
            s.cluster_instructions[k] = cl.instructions;
            s.l2[k] = cl.l2.stats;
            match &cl.l1 {
                L1System::Shared(sh) => s.shared_l1d[k] = sh.stats().clone(),
                L1System::Private { stats, .. } => s.private_l1d[k] = *stats,
            }
            s.active_core_samples[k] = (
                cl.active_sum,
                if cl.active_min == usize::MAX {
                    cl.active_cores
                } else {
                    cl.active_min
                },
                cl.active_max.max(cl.active_cores),
            );
        }
        s.l3 = self.l3.stats;
        s.epochs = self
            .clusters
            .iter()
            .map(|c| c.epoch_count)
            .max()
            .unwrap_or(0);
        s.coherence_messages = self.coherence_messages;
        s.migrations = self.migrations;
        s.context_switches = self.context_switches;
        s.consolidation_trace = self.consolidation_trace.clone();
        let mut faults = self.core_fault_stats.clone();
        for cl in &self.clusters {
            if let L1System::Shared(sh) = &cl.l1 {
                if let Some(fs) = sh.fault_stats() {
                    faults.merge(fs);
                }
            }
        }
        s.faults = faults.summary;
        s.fault_trace = faults.trace;
        s
    }

    /// Per-cluster epoch counts (for averaging Figure 14).
    pub fn cluster_epoch_counts(&self) -> Vec<u64> {
        self.clusters.iter().map(|c| c.epoch_count).collect()
    }
}

/// Epoch-start counter snapshot the trace layer diffs against. Only
/// allocated while a tracer is installed.
struct EpochTraceSnapshot {
    /// Per-cluster shared-L1 counters (`None` for private clusters).
    shared_l1: Vec<Option<SharedL1Stats>>,
    /// Per-cluster L2 counters.
    l2: Vec<LevelStats>,
    /// L3 counters.
    l3: LevelStats,
    /// Aggregate fault counters (core + shared-L1 arrays).
    faults: FaultSummary,
    /// Per-cluster shared-L1 fault-trace length, for forwarding only
    /// events that fired during this epoch.
    fault_trace_len: Vec<usize>,
}

/// Stable label for a cell-level fault event, used as the `FaultCell`
/// trace kind (core-level kinds never appear in shared-L1 traces, but
/// are labelled anyway for totality).
fn fault_kind_label(kind: &FaultEventKind) -> &'static str {
    match kind {
        FaultEventKind::WriteRetried { .. } => "WriteRetried",
        FaultEventKind::RetryExhausted { .. } => "RetryExhausted",
        FaultEventKind::RetentionFlip { .. } => "RetentionFlip",
        FaultEventKind::EccCorrected => "EccCorrected",
        FaultEventKind::EccDetected => "EccDetected",
        FaultEventKind::UncorrectedEscape => "UncorrectedEscape",
        FaultEventKind::ScrubRewrite => "ScrubRewrite",
        FaultEventKind::ScrubDrop { .. } => "ScrubDrop",
        FaultEventKind::CoreFault { .. } => "CoreFault",
        FaultEventKind::CoreDecommissioned { .. } => "CoreDecommissioned",
    }
}

// Hand-written (rather than derived) chip serialisation: most fields are
// private, the deferred wheel needs flattening to a sorted vector, and
// several fields are deliberately excluded from the persisted state —
// the tracer (observation-only, restored disabled), the cluster-shard
// worker budget (a host-performance knob with no simulation effect,
// restored as 1; the runner re-applies the session's width), the
// scratch vectors (drained between steps — `step` debug-asserts them
// empty — so an empty restore is exactly the pre-snapshot state), and
// the boundary-core schedules (derived from the cores' mults, rebuilt
// on restore). Everything else is
// captured verbatim: a restored chip advances bit-identically, which the
// snapshot roundtrip tests (here and in respin-core) enforce.
impl Serialize for Chip {
    fn to_value(&self) -> serde::Value {
        use serde::Value;
        // The wheel's bucket layout is internal; the snapshot stores the
        // entries sorted (the canonical boundary form, byte-identical to
        // the old heap's sorted flattening). Rebuilding the wheel from
        // the flat form is lossless: drain order depends only on the
        // (tick, entry) multiset.
        let deferred: Vec<(u64, Deferred)> = self.deferred.to_sorted();
        Value::Object(vec![
            ("config".to_string(), self.config.to_value()),
            ("core_model".to_string(), self.core_model.to_value()),
            ("instr_e".to_string(), self.instr_e.to_value()),
            ("clusters".to_string(), self.clusters.to_value()),
            ("l3".to_string(), self.l3.to_value()),
            ("l3_leak_mw".to_string(), self.l3_leak_mw.to_value()),
            ("mesh".to_string(), self.mesh.to_value()),
            ("cluster_dir".to_string(), self.cluster_dir.to_value()),
            ("mem".to_string(), self.mem.to_value()),
            ("tick".to_string(), self.tick.to_value()),
            (
                "measure_start_tick".to_string(),
                self.measure_start_tick.to_value(),
            ),
            ("barriers".to_string(), self.barriers.to_value()),
            ("locks".to_string(), self.locks.to_value()),
            ("deferred".to_string(), deferred.to_value()),
            ("pending_remote".to_string(), self.pending_remote.to_value()),
            ("reference_loop".to_string(), self.reference_loop.to_value()),
            ("ticks_skipped".to_string(), self.ticks_skipped.to_value()),
            ("total_threads".to_string(), self.total_threads.to_value()),
            (
                "chip_interconnect_pj".to_string(),
                self.chip_interconnect_pj.to_value(),
            ),
            (
                "coherence_messages".to_string(),
                self.coherence_messages.to_value(),
            ),
            ("migrations".to_string(), self.migrations.to_value()),
            (
                "context_switches".to_string(),
                self.context_switches.to_value(),
            ),
            (
                "consolidation_trace".to_string(),
                self.consolidation_trace.to_value(),
            ),
            (
                "ctx_cost_core_cycles".to_string(),
                self.ctx_cost_core_cycles.to_value(),
            ),
            (
                "slice_core_cycles".to_string(),
                self.slice_core_cycles.to_value(),
            ),
            ("fault_key".to_string(), self.fault_key.to_value()),
            ("fault_epochs".to_string(), self.fault_epochs.to_value()),
            (
                "core_fault_stats".to_string(),
                self.core_fault_stats.to_value(),
            ),
        ])
    }
}

impl Deserialize for Chip {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        use serde::de_field;
        let deferred_flat: Vec<(u64, Deferred)> = de_field(v, "deferred")?;
        let clusters: Vec<Cluster> = de_field(v, "clusters")?;
        Ok(Self {
            config: de_field(v, "config")?,
            core_model: de_field(v, "core_model")?,
            instr_e: de_field(v, "instr_e")?,
            // Derived stepping-loop state, rebuilt rather than persisted.
            boundary_scheds: Self::build_boundary_scheds(&clusters),
            clusters,
            l3: de_field(v, "l3")?,
            l3_leak_mw: de_field(v, "l3_leak_mw")?,
            mesh: de_field(v, "mesh")?,
            cluster_dir: de_field(v, "cluster_dir")?,
            mem: de_field(v, "mem")?,
            tick: de_field(v, "tick")?,
            measure_start_tick: de_field(v, "measure_start_tick")?,
            barriers: de_field(v, "barriers")?,
            locks: de_field(v, "locks")?,
            deferred: DeferredWheel::from_sorted(deferred_flat),
            deferred_scratch: Vec::new(),
            pending_remote: de_field(v, "pending_remote")?,
            ev_scratch: Vec::new(),
            scrub_scratch: Vec::new(),
            reference_loop: de_field(v, "reference_loop")?,
            ticks_skipped: de_field(v, "ticks_skipped")?,
            total_threads: de_field(v, "total_threads")?,
            chip_interconnect_pj: de_field(v, "chip_interconnect_pj")?,
            coherence_messages: de_field(v, "coherence_messages")?,
            migrations: de_field(v, "migrations")?,
            context_switches: de_field(v, "context_switches")?,
            consolidation_trace: de_field(v, "consolidation_trace")?,
            ctx_cost_core_cycles: de_field(v, "ctx_cost_core_cycles")?,
            slice_core_cycles: de_field(v, "slice_core_cycles")?,
            fault_key: de_field(v, "fault_key")?,
            fault_epochs: de_field(v, "fault_epochs")?,
            core_fault_stats: de_field(v, "core_fault_stats")?,
            tracer: Tracer::disabled(),
            cluster_workers: 1,
        })
    }
}

/// First core-cycle boundary of a core with period `mult` (phase-aligned to
/// `issue`) strictly after `ready`.
fn align_boundary(issue: u64, mult: u64, ready: u64) -> u64 {
    if ready < issue {
        return issue + mult;
    }
    issue + ((ready - issue) / mult + 1) * mult
}

#[cfg(test)]
mod tests {
    use super::*;
    use respin_power::MemTech;
    use respin_variation::FrequencyBand;
    use respin_workloads::Benchmark;

    fn tiny_config(org: L1Org) -> ChipConfig {
        let mut c = ChipConfig::nt_base();
        c.clusters = 2;
        c.cores_per_cluster = 4;
        c.l1_org = org;
        c.instructions_per_thread = Some(3_000);
        c.epoch_instructions = 2_000;
        c
    }

    fn spec() -> respin_workloads::WorkloadSpec {
        Benchmark::Fft.spec()
    }

    #[test]
    fn align_boundary_math() {
        assert_eq!(align_boundary(0, 4, 0), 4);
        assert_eq!(align_boundary(0, 4, 3), 4);
        assert_eq!(align_boundary(0, 4, 4), 8);
        assert_eq!(align_boundary(8, 5, 20), 23);
        assert_eq!(align_boundary(8, 5, 7), 13);
    }

    #[test]
    fn fast_path_is_bit_identical_to_reference_loop() {
        for org in [L1Org::SharedPerCluster, L1Org::Private] {
            let mut fast = Chip::new(tiny_config(org), &spec(), 1);
            let mut reference = Chip::new(tiny_config(org), &spec(), 1);
            reference.set_reference_loop(true);
            fast.run_warmup(2_000);
            reference.run_warmup(2_000);
            let a = fast.run_to_completion();
            let b = reference.run_to_completion();
            assert_eq!(a, b, "stepping loops diverged for {org:?}");
            assert_eq!(reference.ticks_skipped(), 0);
            assert!(
                fast.ticks_skipped() > 0,
                "fast path never engaged for {org:?}"
            );
        }
    }

    /// A 4-cluster shrink of the NT baseline so shard widths up to 4 are
    /// meaningful (the tiny 2-cluster config clamps wider teams to 2).
    fn quad_config() -> ChipConfig {
        let mut c = ChipConfig::nt_base();
        c.clusters = 4;
        c.cores_per_cluster = 4;
        c.instructions_per_thread = Some(2_000);
        c.epoch_instructions = 1_500;
        c
    }

    #[test]
    fn cluster_sharded_loop_is_bit_identical_to_sequential() {
        // Ocean is barrier-heavy and Radiosity lock-heavy, so the
        // deferred sync replay — the delicate half of the sharding
        // argument — is exercised hard, not just the independent phases.
        for bench in [Benchmark::Fft, Benchmark::Ocean, Benchmark::Radiosity] {
            let spec = bench.spec();
            let mut seq = Chip::new(quad_config(), &spec, 1);
            seq.run_warmup(2_000);
            let want = seq.run_to_completion();
            for workers in [2, 4] {
                let mut sharded = Chip::new(quad_config(), &spec, 1);
                sharded.set_cluster_workers(workers);
                sharded.run_warmup(2_000);
                let got = sharded.run_to_completion();
                assert_eq!(
                    got, want,
                    "cluster-sharded loop diverged for {bench:?} at {workers} workers"
                );
            }
        }
    }

    #[test]
    fn sharding_is_inert_for_ineligible_configs() {
        // Private L1 and OS context switches fall outside the
        // bit-identity argument; the knob must silently degrade to the
        // sequential loop there, not change results (or panic).
        let mut os_cfg = tiny_config(L1Org::SharedPerCluster);
        os_cfg.ctx_switch = CtxSwitchModel::Os;
        for cfg in [tiny_config(L1Org::Private), os_cfg] {
            let mut seq = Chip::new(cfg.clone(), &spec(), 1);
            let want = seq.run_to_completion();
            let mut knobbed = Chip::new(cfg, &spec(), 1);
            knobbed.set_cluster_workers(4);
            let got = knobbed.run_to_completion();
            assert_eq!(got, want, "ineligible config was perturbed by the knob");
        }
    }

    #[test]
    #[should_panic(expected = "SIM-STORE-UNDERFLOW")]
    fn store_slot_underflow_is_a_structured_violation() {
        let mut chip = Chip::new(tiny_config(L1Org::SharedPerCluster), &spec(), 1);
        // Stage a completion for a store that was never issued: a fresh
        // chip has pending_stores == 0 everywhere, so draining this slot
        // must surface the structured violation, not clamp to 0.
        assert_eq!(chip.clusters[0].cores[0].pending_stores, 0);
        chip.deferred.push(chip.tick, Deferred::FreeStoreSlot(0, 0));
        chip.step();
    }

    #[test]
    fn snapshots_exclude_the_cluster_worker_knob() {
        let mut chip = Chip::new(tiny_config(L1Org::SharedPerCluster), &spec(), 1);
        chip.run_epoch();
        let baseline = chip.to_value();
        chip.set_cluster_workers(4);
        // Same bytes with the knob set: host parallelism never leaks into
        // persisted state...
        assert_eq!(chip.to_value(), baseline);
        // ...and a restore comes back sequential regardless.
        let restored = Chip::from_value(&chip.to_value()).expect("chip snapshot roundtrip");
        assert_eq!(restored.cluster_workers(), 1);
    }

    #[test]
    #[should_panic(expected = "simulator deadlock")]
    fn fast_path_reports_deadlock_instead_of_spinning() {
        let mut chip = Chip::new(tiny_config(L1Org::SharedPerCluster), &spec(), 1);
        // Block every thread on a barrier nobody will ever release: no
        // component owns a wake-up deadline any more.
        for cl in &mut chip.clusters {
            for vc in &mut cl.vcores {
                vc.state = VcState::AtBarrier(999);
            }
        }
        chip.advance();
    }

    #[test]
    fn tracing_is_observation_only() {
        use std::sync::Arc;

        // Two identical chips; one traced, one not. Every simulation
        // outcome must match bit-for-bit — the zero-cost guarantee.
        let mut plain = Chip::new(tiny_config(L1Org::SharedPerCluster), &spec(), 1);
        let mut traced = Chip::new(tiny_config(L1Org::SharedPerCluster), &spec(), 1);
        let ring = Arc::new(respin_trace::RingSink::unbounded());
        traced.set_tracer(Tracer::new(ring.clone()));

        let a = plain.run_to_completion();
        let b = traced.run_to_completion();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.ticks, b.ticks);
        assert_eq!(a.energy, b.energy);

        let events = ring.snapshot();
        let epochs = a.stats.epochs;
        assert!(epochs > 0);
        let cluster_epochs = events
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::ClusterEpoch { .. }))
            .count() as u64;
        let cache_epochs = events
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::CacheEpoch { .. }))
            .count() as u64;
        let chip_epochs = events
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::ChipEpoch { .. }))
            .count() as u64;
        assert_eq!(chip_epochs, epochs);
        assert_eq!(cluster_epochs, epochs * 2);
        assert_eq!(
            cache_epochs,
            epochs * 2,
            "shared config samples every cluster"
        );
        // Faults are off in this config: no fault records at all.
        assert!(!events.iter().any(|e| matches!(
            e.kind,
            TraceKind::FaultEpoch { .. } | TraceKind::FaultCell { .. }
        )));
    }

    #[test]
    fn consolidation_and_migration_are_traced() {
        use std::sync::Arc;

        let mut cfg = tiny_config(L1Org::SharedPerCluster);
        cfg.consolidation = true;
        let mut chip = Chip::new(cfg, &spec(), 1);
        let ring = Arc::new(respin_trace::RingSink::unbounded());
        chip.set_tracer(Tracer::new(ring.clone()));
        chip.run_epoch();
        chip.set_active_cores(0, 2);
        let events = ring.snapshot();
        let consolidations: Vec<_> = events
            .iter()
            .filter_map(|e| match e.kind {
                TraceKind::Consolidation {
                    cluster,
                    from,
                    to,
                    total_active,
                } => Some((cluster, from, to, total_active)),
                _ => None,
            })
            .collect();
        assert_eq!(consolidations, vec![(0, 4, 2, 6)]);
        assert!(
            events
                .iter()
                .any(|e| matches!(e.kind, TraceKind::Migration { cluster: 0, .. })),
            "halving a full cluster must migrate orphaned vcores"
        );
    }

    #[test]
    fn shared_chip_runs_to_completion() {
        let mut chip = Chip::new(tiny_config(L1Org::SharedPerCluster), &spec(), 1);
        let res = chip.run_to_completion();
        assert_eq!(res.instructions, 8 * 3_000);
        assert!(res.ticks > 0);
        assert!(res.energy.chip_total_pj() > 0.0);
        let merged = res.stats.shared_l1d_merged();
        assert!(merged.reads > 0);
        assert!(merged.one_cycle_hit_fraction() > 0.5);
    }

    #[test]
    fn private_chip_runs_to_completion() {
        let mut chip = Chip::new(tiny_config(L1Org::Private), &spec(), 1);
        let res = chip.run_to_completion();
        assert_eq!(res.instructions, 8 * 3_000);
        let l1 = &res.stats.private_l1d[0];
        assert!(l1.hits + l1.misses > 0);
        assert!(
            res.stats.coherence_messages > 0,
            "sharing must cause traffic"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut chip = Chip::new(tiny_config(L1Org::SharedPerCluster), &spec(), 7);
            chip.run_to_completion()
        };
        let a = run();
        let b = run();
        assert_eq!(a.ticks, b.ticks);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.energy, b.energy);
    }

    #[test]
    fn clone_forks_identically() {
        let mut chip = Chip::new(tiny_config(L1Org::SharedPerCluster), &spec(), 3);
        chip.run_epoch();
        let mut fork = chip.clone();
        let a = chip.run_epoch();
        let b = fork.run_epoch();
        assert_eq!(a, b);
    }

    #[test]
    fn faults_off_reports_zero_counters() {
        let mut chip = Chip::new(tiny_config(L1Org::SharedPerCluster), &spec(), 1);
        let res = chip.run_to_completion();
        assert_eq!(res.stats.faults, respin_faults::FaultSummary::default());
        assert!(res.stats.fault_trace.is_empty());
    }

    #[test]
    fn clone_forks_identically_with_faults() {
        let mut cfg = tiny_config(L1Org::SharedPerCluster);
        cfg.faults.write_ber = 1e-4;
        cfg.faults.retention_flip_rate = 1e-9;
        cfg.faults.ecc = true;
        cfg.faults.scrub = true;
        let mut chip = Chip::new(cfg, &spec(), 3);
        chip.run_epoch();
        let mut fork = chip.clone();
        let a = chip.run_epoch();
        let b = fork.run_epoch();
        assert_eq!(a, b);
        assert_eq!(chip.stats(), fork.stats());
    }

    #[test]
    fn cell_faults_with_ecc_complete_without_escapes() {
        let mut cfg = tiny_config(L1Org::SharedPerCluster);
        cfg.faults.write_ber = 1e-3;
        cfg.faults.retention_flip_rate = 1e-9;
        cfg.faults.ecc = true;
        cfg.faults.scrub = true;
        let mut chip = Chip::new(cfg, &spec(), 1);
        let res = chip.run_to_completion();
        assert_eq!(res.instructions, 8 * 3_000, "faults must not lose work");
        assert!(res.stats.faults.write_faults > 0, "BER 1e-3 must fire");
        assert!(res.stats.faults.write_retries > 0);
        assert_eq!(
            res.stats.faults.uncorrected_escapes, 0,
            "SECDED is on: nothing may escape silently"
        );
        assert!(res.stats.faults.recovery_energy_pj > 0.0);
        assert!(!res.stats.fault_trace.is_empty());
    }

    #[test]
    fn seeded_bad_core_is_decommissioned_gracefully() {
        let mut cfg = tiny_config(L1Org::SharedPerCluster);
        cfg.consolidation = true;
        cfg.faults.seeded_bad_core = Some(1); // cluster 0, core 1
        cfg.faults.core_fault_threshold = 2;
        let mut chip = Chip::new(cfg, &spec(), 1);
        let res = chip.run_to_completion();
        // Degradation is graceful: every instruction still retires.
        assert_eq!(res.instructions, 8 * 3_000);
        assert!(chip.clusters[0].cores[1].faulty);
        assert!(!chip.clusters[0].cores[1].active);
        assert!(chip.clusters[0].cores[1].assigned.is_empty());
        assert_eq!(chip.clusters[0].healthy_cores(), 3);
        assert_eq!(res.stats.faults.cores_decommissioned, 1);
        assert!(res.stats.faults.core_faults >= 2);
        assert!(chip.check_assignment_invariant(0));
        assert!(chip.check_assignment_invariant(1));
        // The decommission is recorded like a consolidation power-off.
        assert!(res
            .stats
            .consolidation_trace
            .iter()
            .any(|&(_, active)| active < 8));
    }

    #[test]
    fn decommission_wakes_replacement_when_last_healthy_active() {
        let mut cfg = tiny_config(L1Org::SharedPerCluster);
        cfg.consolidation = true;
        let mut chip = Chip::new(cfg, &spec(), 1);
        chip.run_epoch();
        chip.set_active_cores(0, 1);
        let victim = (0..4)
            .find(|&c| chip.clusters[0].cores[c].active)
            .expect("one active core");
        assert!(chip.decommission_core(0, victim));
        // A healthy replacement core must have been woken; work continues.
        assert_eq!(chip.clusters[0].active_cores, 1);
        assert!(chip.check_assignment_invariant(0));
        let res = chip.run_to_completion();
        assert_eq!(res.instructions, 8 * 3_000);
    }

    #[test]
    fn consolidation_moves_and_restores_threads() {
        let mut cfg = tiny_config(L1Org::SharedPerCluster);
        cfg.consolidation = true;
        let mut chip = Chip::new(cfg, &spec(), 2);
        chip.run_epoch();
        chip.set_active_cores(0, 2);
        assert!(chip.check_assignment_invariant(0));
        assert_eq!(chip.clusters[0].active_cores, 2);
        assert_eq!(
            chip.clusters[0].cores.iter().filter(|c| c.active).count(),
            2
        );
        let loads: Vec<usize> = chip.clusters[0]
            .cores
            .iter()
            .filter(|c| c.active)
            .map(|c| c.assigned.len())
            .collect();
        assert_eq!(loads.iter().sum::<usize>(), 4);
        assert!(loads.iter().all(|&l| l == 2));
        chip.run_epoch();
        chip.set_active_cores(0, 4);
        assert!(chip.check_assignment_invariant(0));
        assert!(chip.stats().migrations > 0);
        // And the run still completes correctly.
        let res = chip.run_to_completion();
        assert_eq!(res.instructions, 8 * 3_000);
    }

    #[test]
    fn consolidation_saves_core_leakage() {
        let mut cfg = tiny_config(L1Org::SharedPerCluster);
        cfg.consolidation = true;
        let spec = spec();
        let full = Chip::new(cfg.clone(), &spec, 5).run_to_completion();
        let mut half_chip = Chip::new(cfg, &spec, 5);
        half_chip.set_active_cores(0, 2);
        half_chip.set_active_cores(1, 2);
        let half = half_chip.run_to_completion();
        // Halving cores must cut average core-leakage *power*.
        let full_leak_mw = full.energy.core_leakage_pj / full.time_ps * 1_000.0;
        let half_leak_mw = half.energy.core_leakage_pj / half.time_ps * 1_000.0;
        assert!(
            half_leak_mw < full_leak_mw * 0.75,
            "full {full_leak_mw} mW vs half {half_leak_mw} mW"
        );
        // But it should also be slower.
        assert!(half.ticks > full.ticks);
    }

    #[test]
    fn hp_nominal_config_is_faster() {
        // Small working sets so the 3 000-instruction streams are not
        // dominated by compulsory DRAM misses (which hit both designs
        // equally and compress the ratio).
        let mut spec = spec();
        spec.private_ws_bytes = 4 * 1024;
        spec.shared_ws_bytes = 8 * 1024;
        let mut nt = tiny_config(L1Org::Private);
        nt.cache_tech = MemTech::Sram;
        nt.cache_vdd = 0.65;
        let nt_res = Chip::new(nt, &spec, 4).run_to_completion();

        let mut hp = tiny_config(L1Org::Private);
        hp.cache_tech = MemTech::Sram;
        hp.cache_vdd = 1.0;
        hp.core_vdd = 1.0;
        hp.band = FrequencyBand::NOMINAL;
        let hp_res = Chip::new(hp, &spec, 4).run_to_completion();

        // HP runs a 4-6× faster clock but pays more *cycles* per cache
        // miss, so the end-to-end gap lands around 2×.
        assert!(
            (hp_res.ticks as f64) * 1.7 < nt_res.ticks as f64,
            "hp {} vs nt {}",
            hp_res.ticks,
            nt_res.ticks
        );
    }

    #[test]
    fn barrier_synchronises_all_threads() {
        let mut cfg = tiny_config(L1Org::SharedPerCluster);
        cfg.instructions_per_thread = Some(5_000);
        let mut spec = Benchmark::Ocean.spec(); // barrier-heavy
        spec.instructions_per_thread = 5_000;
        let mut chip = Chip::new(cfg, &spec, 1);
        let res = chip.run_to_completion();
        assert_eq!(res.instructions, 8 * 5_000);
        assert!(chip.barriers.is_empty(), "all barriers must be released");
    }

    #[test]
    fn locks_are_exclusive_and_all_released() {
        let mut cfg = tiny_config(L1Org::SharedPerCluster);
        cfg.instructions_per_thread = Some(5_000);
        let mut spec = Benchmark::Radiosity.spec(); // lock-heavy
        spec.instructions_per_thread = 5_000;
        let mut chip = Chip::new(cfg, &spec, 1);
        let res = chip.run_to_completion();
        // Lock-bearing streams may retire a few extra instructions: an open
        // critical section always completes before Done so locks balance.
        assert!(res.instructions >= 8 * 5_000);
        assert!(res.instructions < 8 * 5_000 + 100);
        for (id, e) in chip.locks.iter() {
            assert!(e.holder.is_none(), "lock {id} still held at exit");
            assert!(e.waiters.is_empty(), "lock {id} still has waiters");
        }
    }

    #[test]
    fn energy_components_all_positive() {
        let mut chip = Chip::new(tiny_config(L1Org::SharedPerCluster), &spec(), 1);
        let res = chip.run_to_completion();
        let e = res.energy;
        assert!(e.core_dynamic_pj > 0.0);
        assert!(e.core_leakage_pj > 0.0);
        assert!(e.cache_dynamic_pj > 0.0);
        assert!(e.cache_leakage_pj > 0.0);
        assert!(e.interconnect_pj > 0.0);
    }
}
