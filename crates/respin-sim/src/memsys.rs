//! L2 / L3 / main-memory levels.
//!
//! These levels are latency/bandwidth models around [`CacheArray`]s: each
//! level accepts at most one request per `accept_interval` ticks (a
//! pipelined array) and returns data `read_ticks` after acceptance. Fill
//! and writeback traffic updates tag state immediately — only the timing of
//! the *demand* path is modelled precisely, which is what the paper's
//! figures depend on.
//!
//! **Fast-path note** (DESIGN.md §12): these levels are *passive* — they
//! have no per-tick work of their own, only an `accept_interval` gate and
//! a latency folded into the requester's completion tick. The delay a
//! level imposes is always carried by whoever is waiting on it (a
//! shared-L1 pending read's `arrival_tick`, a core's `StallUntil`), so
//! `MemLevel` contributes no deadline of its own to
//! `Chip::next_event_tick` and the next-wakeup invariant holds here
//! trivially.

use crate::cache::{CacheArray, Evicted, LineState};
use crate::stats::LevelStats;
use respin_power::{ArrayParams, CacheGeometry};
use serde::{Deserialize, Serialize};

/// One cache level below the L1s (L2 or L3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemLevel {
    array: CacheArray,
    /// Data latency after acceptance, ticks.
    pub read_ticks: u64,
    /// Write occupancy, ticks.
    pub write_ticks: u64,
    /// Minimum spacing between accepted requests, ticks.
    accept_interval: u64,
    next_free: u64,
    /// Per-access energies, pJ.
    read_energy_pj: f64,
    write_energy_pj: f64,
    /// Hit/miss counters.
    pub stats: LevelStats,
    /// Dynamic energy accumulated since last drain, pJ.
    pub(crate) dyn_energy_pj: f64,
}

impl MemLevel {
    /// Builds the level.
    pub fn new(
        geometry: CacheGeometry,
        params: &ArrayParams,
        read_ticks: u64,
        write_ticks: u64,
        accept_interval: u64,
    ) -> Self {
        Self {
            array: CacheArray::new(geometry),
            read_ticks,
            write_ticks,
            accept_interval,
            next_free: 0,
            read_energy_pj: params.read_energy_pj,
            write_energy_pj: params.write_energy_pj,
            stats: LevelStats::default(),
            dyn_energy_pj: 0.0,
        }
    }

    /// Demand read arriving at `earliest`. Returns `(data_ready_tick, hit)`.
    /// On a miss the caller resolves the next level and then calls
    /// [`Self::fill`]; `data_ready_tick` is then the tick the *tag lookup*
    /// completed (the miss detection point).
    pub fn read(&mut self, addr: u64, earliest: u64) -> (u64, bool) {
        let start = self.next_free.max(earliest);
        self.next_free = start + self.accept_interval;
        self.dyn_energy_pj += self.read_energy_pj;
        let hit = self.array.touch(addr).is_some();
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        (start + self.read_ticks, hit)
    }

    /// Writeback or store propagation arriving at `earliest`. Returns the
    /// completion tick. Write misses allocate (the line just left a level
    /// above; we install it dirty).
    pub fn write(&mut self, addr: u64, earliest: u64) -> (u64, Option<Evicted>) {
        let start = self.next_free.max(earliest);
        self.next_free = start + self.accept_interval;
        self.dyn_energy_pj += self.write_energy_pj;
        let evicted = if self.array.touch(addr).is_some() {
            self.array.set_state(addr, LineState::Modified);
            None
        } else {
            self.stats.misses += 1;
            self.array.fill(addr, LineState::Modified)
        };
        (start + self.write_ticks, evicted)
    }

    /// Installs a line fetched from below; clean unless `dirty`.
    pub fn fill(&mut self, addr: u64, dirty: bool) -> Option<Evicted> {
        self.dyn_energy_pj += self.write_energy_pj;
        self.array.fill(
            addr,
            if dirty {
                LineState::Modified
            } else {
                LineState::Exclusive
            },
        )
    }

    /// Block-aligns an address to this level's block size.
    pub fn block_addr(&self, addr: u64) -> u64 {
        self.array.block_addr(addr)
    }

    /// Probe without side effects.
    pub fn probe(&self, addr: u64) -> Option<LineState> {
        self.array.probe(addr)
    }

    /// Invalidate (inter-cluster coherence). Returns the state if present.
    pub fn invalidate(&mut self, addr: u64) -> Option<LineState> {
        self.array.invalidate(addr)
    }

    /// Zeroes statistics and energy accumulators (measurement warm-up).
    pub fn reset_measurements(&mut self) {
        self.stats = LevelStats::default();
        self.dyn_energy_pj = 0.0;
    }
}

/// Main memory: fixed latency, unbounded bandwidth (the workloads' L3 miss
/// rates are tiny; modelling DRAM channels would add nothing here).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MainMemory {
    /// Accesses served (for the off-chip energy account).
    pub accesses: u64,
}

impl MainMemory {
    /// Read: data ready after the fixed DRAM latency.
    pub fn read(&mut self, earliest: u64) -> u64 {
        self.accesses += 1;
        earliest + crate::consts::MEM_LATENCY_TICKS
    }

    /// Total off-chip energy so far, pJ.
    pub fn energy_pj(&self) -> f64 {
        self.accesses as f64 * crate::consts::MEM_ACCESS_ENERGY_PJ
    }

    /// Zeroes the access count (measurement warm-up).
    pub fn reset_measurements(&mut self) {
        self.accesses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use respin_power::{array_params, MemTech};

    fn level() -> MemLevel {
        let g = CacheGeometry::new(64 * 1024, 64, 8);
        let p = array_params(MemTech::SttRam, g, 1.0);
        MemLevel::new(g, &p, 6, 14, 2)
    }

    #[test]
    fn read_miss_then_fill_then_hit() {
        let mut l = level();
        let (t, hit) = l.read(0x1000, 10);
        assert!(!hit);
        assert_eq!(t, 16);
        l.fill(0x1000, false);
        let (t2, hit2) = l.read(0x1000, 20);
        assert!(hit2);
        assert_eq!(t2, 26);
        assert_eq!(l.stats.hits, 1);
        assert_eq!(l.stats.misses, 1);
    }

    #[test]
    fn bandwidth_backpressure() {
        let mut l = level();
        let (t1, _) = l.read(0x0, 0);
        let (t2, _) = l.read(0x40, 0);
        let (t3, _) = l.read(0x80, 0);
        assert_eq!(t1, 6);
        assert_eq!(t2, 8); // accepted 2 ticks later
        assert_eq!(t3, 10);
    }

    #[test]
    fn write_allocates_dirty() {
        let mut l = level();
        let (_, ev) = l.write(0x2000, 0);
        assert!(ev.is_none());
        assert_eq!(l.probe(0x2000), Some(LineState::Modified));
    }

    #[test]
    fn dirty_eviction_surfaces() {
        // 64 KB, 8-way, 64 B ⇒ 128 sets; stride 8 KiB collides.
        let mut l = level();
        let stride = 64 * 128;
        for i in 0..8 {
            l.fill(i * stride, true);
        }
        let ev = l.fill(8 * stride, false).expect("must evict");
        assert!(ev.dirty);
    }

    #[test]
    fn memory_latency_and_energy() {
        let mut m = MainMemory::default();
        assert_eq!(m.read(100), 100 + crate::consts::MEM_LATENCY_TICKS);
        assert_eq!(m.read(0), crate::consts::MEM_LATENCY_TICKS);
        assert!((m.energy_pj() - 2.0 * crate::consts::MEM_ACCESS_ENERGY_PJ).abs() < 1e-9);
    }
}
