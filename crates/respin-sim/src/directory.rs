//! MESI directory controller.
//!
//! One instance lives at each shared level that keeps private children
//! coherent: the cluster L2 tracks its private L1s (in the `Private` L1
//! organisation), and the chip L3 tracks the four cluster L2s. Each entry
//! holds a sharer bitmask and an optional owner (the single child holding
//! the line Modified).
//!
//! The directory decides *protocol outcomes*; the caller applies them to the
//! child tag arrays and charges the latency/energy adders from
//! [`crate::consts`].

use crate::cache::LineState;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Outcome of a read request at the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadOutcome {
    /// The line had to be fetched from a Modified sibling (who is
    /// downgraded to Shared).
    pub remote_fetch_from: Option<u8>,
    /// State the requesting child should install the line in.
    pub fill_state: LineState,
    /// Children that already held the line before this read (they may hold
    /// it Exclusive and must be downgraded to Shared).
    pub prior_sharers: u64,
}

/// Outcome of a write (ownership) request at the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WriteOutcome {
    /// Bitmask of children whose copies must be invalidated.
    pub invalidate_mask: u64,
    /// The line had to be fetched from a Modified sibling first.
    pub remote_fetch_from: Option<u8>,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
struct DirEntry {
    sharers: u64,
    owner: Option<u8>,
}

/// Directory over up to 64 children.
///
/// Entries live in a `BTreeMap` (not `HashMap`): `check_invariants` and
/// the serialised form traverse the entries, and address order keeps both
/// deterministic — the first invariant witness reported and the JSON key
/// order are functions of the state alone, never of hasher seeding
/// (determinism lint D001).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Directory {
    entries: BTreeMap<u64, DirEntry>,
}

impl Directory {
    /// Empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Child `child` wants to read `line` (block-aligned address).
    pub fn read(&mut self, line: u64, child: u8) -> ReadOutcome {
        let e = self.entries.entry(line).or_default();
        let prior = e.sharers & !(1 << child);
        let remote = match e.owner {
            Some(o) if o != child => {
                // Downgrade the owner; both end up Shared.
                e.owner = None;
                Some(o)
            }
            _ => None,
        };
        e.sharers |= 1 << child;
        let alone = e.sharers == 1 << child && e.owner.is_none();
        ReadOutcome {
            remote_fetch_from: remote,
            fill_state: if alone {
                LineState::Exclusive
            } else {
                LineState::Shared
            },
            prior_sharers: prior,
        }
    }

    /// Child `child` wants ownership of `line` to write it.
    pub fn write(&mut self, line: u64, child: u8) -> WriteOutcome {
        let e = self.entries.entry(line).or_default();
        let remote = match e.owner {
            Some(o) if o != child => Some(o),
            _ => None,
        };
        let invalidate = e.sharers & !(1 << child);
        e.sharers = 1 << child;
        e.owner = Some(child);
        WriteOutcome {
            invalidate_mask: invalidate,
            remote_fetch_from: remote,
        }
    }

    /// Child `child` evicted its copy of `line`.
    pub fn evict(&mut self, line: u64, child: u8) {
        if let Some(e) = self.entries.get_mut(&line) {
            e.sharers &= !(1 << child);
            if e.owner == Some(child) {
                e.owner = None;
            }
            if e.sharers == 0 {
                self.entries.remove(&line);
            }
        }
    }

    /// Current sharer mask (testing/diagnostics).
    pub fn sharers(&self, line: u64) -> u64 {
        self.entries.get(&line).map_or(0, |e| e.sharers)
    }

    /// Current owner (testing/diagnostics).
    pub fn owner(&self, line: u64) -> Option<u8> {
        self.entries.get(&line).and_then(|e| e.owner)
    }

    /// Number of tracked lines.
    pub fn tracked_lines(&self) -> usize {
        self.entries.len()
    }

    /// Protocol invariant: an owner is always the sole sharer.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (&line, e) in &self.entries {
            if let Some(o) = e.owner {
                if e.sharers != 1 << o {
                    return Err(format!(
                        "line {line:#x}: owner {o} but sharers {:#b}",
                        e.sharers
                    ));
                }
            }
            if e.sharers == 0 {
                return Err(format!("line {line:#x} tracked with no sharers"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_reader_gets_exclusive() {
        let mut d = Directory::new();
        let o = d.read(0x100, 3);
        assert_eq!(o.fill_state, LineState::Exclusive);
        assert_eq!(o.remote_fetch_from, None);
        assert_eq!(d.sharers(0x100), 1 << 3);
    }

    #[test]
    fn second_reader_gets_shared() {
        let mut d = Directory::new();
        d.read(0x100, 0);
        let o = d.read(0x100, 1);
        assert_eq!(o.fill_state, LineState::Shared);
        assert_eq!(d.sharers(0x100), 0b11);
    }

    #[test]
    fn write_invalidates_other_sharers() {
        let mut d = Directory::new();
        d.read(0x100, 0);
        d.read(0x100, 1);
        d.read(0x100, 2);
        let o = d.write(0x100, 1);
        assert_eq!(o.invalidate_mask, 0b101);
        assert_eq!(o.remote_fetch_from, None);
        assert_eq!(d.owner(0x100), Some(1));
        assert_eq!(d.sharers(0x100), 0b10);
    }

    #[test]
    fn read_after_modified_downgrades_owner() {
        let mut d = Directory::new();
        d.write(0x100, 0);
        let o = d.read(0x100, 1);
        assert_eq!(o.remote_fetch_from, Some(0));
        assert_eq!(o.fill_state, LineState::Shared);
        assert_eq!(d.owner(0x100), None);
        assert_eq!(d.sharers(0x100), 0b11);
    }

    #[test]
    fn write_after_remote_modified_fetches_and_invalidates() {
        let mut d = Directory::new();
        d.write(0x100, 0);
        let o = d.write(0x100, 1);
        assert_eq!(o.remote_fetch_from, Some(0));
        assert_eq!(o.invalidate_mask, 0b01);
        assert_eq!(d.owner(0x100), Some(1));
    }

    #[test]
    fn own_write_upgrade_is_free() {
        let mut d = Directory::new();
        d.read(0x100, 2);
        let o = d.write(0x100, 2);
        assert_eq!(o.invalidate_mask, 0);
        assert_eq!(o.remote_fetch_from, None);
    }

    #[test]
    fn serialised_form_is_independent_of_construction_order() {
        // The D001 regression this module was converted for: with a
        // HashMap, two directories holding the *same* entries serialise
        // (and report invariant witnesses) in hasher order, which varies
        // per process. The BTreeMap form must be byte-identical however
        // the state was reached.
        let build = |lines: &[u64]| {
            let mut d = Directory::new();
            for &line in lines {
                d.read(line, 1);
                d.read(line, 2);
            }
            d
        };
        let a = build(&[0x100, 0x240, 0x080, 0x5c0]);
        let b = build(&[0x5c0, 0x080, 0x100, 0x240]);
        assert_eq!(a, b);
        let ja = serde_json::to_string(&a).expect("serialise");
        let jb = serde_json::to_string(&b).expect("serialise");
        assert_eq!(ja, jb, "serialised directory must not depend on op order");
    }

    #[test]
    fn entries_iterate_in_address_order() {
        // check_invariants walks the entries, so its first witness (and
        // any future diagnostic traversal) must be a pure function of the
        // state: ascending line address, never hasher order.
        let mut d = Directory::new();
        for line in [0x400u64, 0x100, 0x7c0, 0x240] {
            d.read(line, 0);
        }
        let walked: Vec<u64> = d.entries.keys().copied().collect();
        assert_eq!(walked, vec![0x100, 0x240, 0x400, 0x7c0]);
    }

    #[test]
    fn eviction_untracks_empty_lines() {
        let mut d = Directory::new();
        d.read(0x100, 0);
        d.read(0x100, 1);
        d.evict(0x100, 0);
        assert_eq!(d.sharers(0x100), 0b10);
        d.evict(0x100, 1);
        assert_eq!(d.tracked_lines(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn invariants_hold_under_random_traffic(
            ops in proptest::collection::vec(
                (0u64..8, 0u8..8, 0u8..3), 1..500),
        ) {
            let mut d = Directory::new();
            for (line, child, kind) in ops {
                let line = line << 6;
                match kind {
                    0 => { d.read(line, child); }
                    1 => { d.write(line, child); }
                    _ => { d.evict(line, child); }
                }
                prop_assert!(d.check_invariants().is_ok(), "{:?}", d);
            }
        }

        #[test]
        fn writer_is_always_sole_sharer(
            readers in proptest::collection::vec(0u8..16, 0..16),
            writer in 0u8..16,
        ) {
            let mut d = Directory::new();
            for r in readers {
                d.read(0x40, r);
            }
            d.write(0x40, writer);
            prop_assert_eq!(d.sharers(0x40), 1u64 << writer);
            prop_assert_eq!(d.owner(0x40), Some(writer));
        }
    }
}
