//! MESI directory controller.
//!
//! One instance lives at each shared level that keeps private children
//! coherent: the cluster L2 tracks its private L1s (in the `Private` L1
//! organisation), and the chip L3 tracks the four cluster L2s. Each entry
//! holds a sharer bitmask and an optional owner (the single child holding
//! the line Modified).
//!
//! The directory decides *protocol outcomes*; the caller applies them to the
//! child tag arrays and charges the latency/energy adders from
//! [`crate::consts`].
//!
//! # Storage: dense open addressing, canonical order at boundaries
//!
//! Entries live in an open-addressed table keyed by block address (linear
//! probing with backward-shift deletion), not in a `BTreeMap`: the lookup
//! on every miss/upgrade is a single multiply-shift hash plus a short
//! probe over a contiguous slot array, instead of a pointer chase through
//! tree nodes, and steady-state traffic allocates nothing.
//!
//! The *physical* slot order is history-dependent (it depends on the
//! insertion/removal sequence), so it is never allowed to escape: every
//! observable traversal — [`Directory::check_invariants`] witnesses, the
//! serialised form, `Debug`, equality — first materialises the entries in
//! ascending address order. That is the same canonical-order-at-boundaries
//! argument the determinism lint (D001) encodes for maps: internal layout
//! may be anything, but anything *reported* must be a pure function of the
//! map contents. The serialised form is byte-identical to the previous
//! `BTreeMap<u64, DirEntry>` representation, so chip snapshots round-trip
//! across the representation change.
//!
//! The old tree-backed implementation is retained as
//! [`reference::BTreeDirectory`], the oracle for differential tests.

use crate::cache::LineState;
use serde::{de_field, Deserialize, Error as SerdeError, Serialize, Value};
use std::collections::BTreeMap;
use std::fmt;

/// Outcome of a read request at the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadOutcome {
    /// The line had to be fetched from a Modified sibling (who is
    /// downgraded to Shared).
    pub remote_fetch_from: Option<u8>,
    /// State the requesting child should install the line in.
    pub fill_state: LineState,
    /// Children that already held the line before this read (they may hold
    /// it Exclusive and must be downgraded to Shared).
    pub prior_sharers: u64,
}

/// Outcome of a write (ownership) request at the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WriteOutcome {
    /// Bitmask of children whose copies must be invalidated.
    pub invalidate_mask: u64,
    /// The line had to be fetched from a Modified sibling first.
    pub remote_fetch_from: Option<u8>,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
struct DirEntry {
    sharers: u64,
    owner: Option<u8>,
}

/// One open-addressing slot: a key/entry pair plus liveness. A dead slot
/// carries stale key/entry bytes that are never read.
#[derive(Debug, Clone, Copy)]
struct Slot {
    key: u64,
    entry: DirEntry,
    used: bool,
}

const EMPTY_SLOT: Slot = Slot {
    key: 0,
    entry: DirEntry {
        sharers: 0,
        owner: None,
    },
    used: false,
};

/// Fibonacci multiplier for the multiply-shift hash (2^64 / φ, odd).
const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// Smallest table allocated once the directory is non-empty.
const MIN_CAPACITY: usize = 64;

/// Directory over up to 64 children.
///
/// Backed by a dense open-addressed table (see the module docs for the
/// canonical-order-at-boundaries determinism argument). The table grows at
/// 3/4 load and uses backward-shift deletion, so probe chains stay short
/// and no tombstones accumulate.
#[derive(Clone, Default)]
pub struct Directory {
    /// Power-of-two slot array (empty until the first insertion).
    slots: Vec<Slot>,
    /// Number of live entries.
    live: usize,
}

impl Directory {
    /// Empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Home slot index for `key` (table must be non-empty).
    #[inline]
    fn home(&self, key: u64) -> usize {
        // Multiply-shift: the high bits of key * 2^64/φ, folded down to
        // the table size. Block addresses share low zero bits; the
        // multiply diffuses them across the whole word.
        (key.wrapping_mul(HASH_MUL) >> 32) as usize & (self.slots.len() - 1)
    }

    /// Index of `key`'s live slot, if present.
    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = self.home(key);
        loop {
            let s = &self.slots[i];
            if !s.used {
                return None;
            }
            if s.key == key {
                return Some(i);
            }
            i = (i + 1) & mask;
        }
    }

    /// Mutable entry for `key`, inserted (default) if absent.
    fn entry_mut(&mut self, key: u64) -> &mut DirEntry {
        if self.slots.len() * 3 < (self.live + 1) * 4 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = self.home(key);
        loop {
            if !self.slots[i].used {
                self.slots[i] = Slot {
                    key,
                    entry: DirEntry::default(),
                    used: true,
                };
                self.live += 1;
                return &mut self.slots[i].entry;
            }
            if self.slots[i].key == key {
                return &mut self.slots[i].entry;
            }
            i = (i + 1) & mask;
        }
    }

    /// Doubles the table (or allocates the first one) and re-homes every
    /// live entry. Amortised over insertions; steady-state traffic never
    /// gets here.
    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(MIN_CAPACITY);
        let old = std::mem::replace(&mut self.slots, vec![EMPTY_SLOT; new_cap]);
        let mask = new_cap - 1;
        for s in old.into_iter().filter(|s| s.used) {
            let mut i = self.home(s.key);
            while self.slots[i].used {
                i = (i + 1) & mask;
            }
            self.slots[i] = s;
        }
    }

    /// Removes the live slot at `i`, backward-shifting the probe chain so
    /// no tombstone is left behind.
    fn remove_at(&mut self, i: usize) {
        let mask = self.slots.len() - 1;
        self.live -= 1;
        let mut hole = i;
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            if !self.slots[j].used {
                self.slots[hole].used = false;
                return;
            }
            let home = self.home(self.slots[j].key);
            // `j` may fill the hole iff its probe distance reaches back to
            // (or past) the hole; otherwise moving it would place it
            // before its home slot.
            if (j.wrapping_sub(home) & mask) >= (j.wrapping_sub(hole) & mask) {
                self.slots[hole] = self.slots[j];
                hole = j;
            }
        }
    }

    /// Live entries in ascending address order — the canonical traversal
    /// every observable boundary (serialisation, invariant witnesses,
    /// `Debug`, equality) goes through.
    fn sorted_entries(&self) -> Vec<(u64, DirEntry)> {
        let mut v: Vec<(u64, DirEntry)> = self
            .slots
            .iter()
            .filter(|s| s.used)
            .map(|s| (s.key, s.entry))
            .collect();
        v.sort_unstable_by_key(|&(k, _)| k);
        v
    }

    /// Child `child` wants to read `line` (block-aligned address).
    pub fn read(&mut self, line: u64, child: u8) -> ReadOutcome {
        let e = self.entry_mut(line);
        let prior = e.sharers & !(1 << child);
        let remote = match e.owner {
            Some(o) if o != child => {
                // Downgrade the owner; both end up Shared.
                e.owner = None;
                Some(o)
            }
            _ => None,
        };
        e.sharers |= 1 << child;
        let alone = e.sharers == 1 << child && e.owner.is_none();
        ReadOutcome {
            remote_fetch_from: remote,
            fill_state: if alone {
                LineState::Exclusive
            } else {
                LineState::Shared
            },
            prior_sharers: prior,
        }
    }

    /// Child `child` wants ownership of `line` to write it.
    pub fn write(&mut self, line: u64, child: u8) -> WriteOutcome {
        let e = self.entry_mut(line);
        let remote = match e.owner {
            Some(o) if o != child => Some(o),
            _ => None,
        };
        let invalidate = e.sharers & !(1 << child);
        e.sharers = 1 << child;
        e.owner = Some(child);
        WriteOutcome {
            invalidate_mask: invalidate,
            remote_fetch_from: remote,
        }
    }

    /// Child `child` evicted its copy of `line`.
    pub fn evict(&mut self, line: u64, child: u8) {
        if let Some(i) = self.find(line) {
            let e = &mut self.slots[i].entry;
            e.sharers &= !(1 << child);
            if e.owner == Some(child) {
                e.owner = None;
            }
            if e.sharers == 0 {
                self.remove_at(i);
            }
        }
    }

    /// Current sharer mask (testing/diagnostics).
    pub fn sharers(&self, line: u64) -> u64 {
        self.find(line).map_or(0, |i| self.slots[i].entry.sharers)
    }

    /// Current owner (testing/diagnostics).
    pub fn owner(&self, line: u64) -> Option<u8> {
        self.find(line).and_then(|i| self.slots[i].entry.owner)
    }

    /// Number of tracked lines.
    pub fn tracked_lines(&self) -> usize {
        self.live
    }

    /// Protocol invariant: an owner is always the sole sharer. Witnesses
    /// are reported in ascending address order (canonical, never layout
    /// order).
    pub fn check_invariants(&self) -> Result<(), String> {
        for (line, e) in self.sorted_entries() {
            if let Some(o) = e.owner {
                if e.sharers != 1 << o {
                    return Err(format!(
                        "line {line:#x}: owner {o} but sharers {:#b}",
                        e.sharers
                    ));
                }
            }
            if e.sharers == 0 {
                return Err(format!("line {line:#x} tracked with no sharers"));
            }
        }
        Ok(())
    }
}

/// Equality is over map contents, not slot layout: two directories that
/// hold the same entries compare equal regardless of the operation
/// histories that produced them.
impl PartialEq for Directory {
    fn eq(&self, other: &Self) -> bool {
        self.live == other.live
            && self
                .slots
                .iter()
                .filter(|s| s.used)
                .all(|s| other.find(s.key).map(|i| other.slots[i].entry) == Some(s.entry))
    }
}

/// Debug shows the canonical (address-ordered) view, so diagnostics that
/// embed a directory — proptest failure messages, invariant reports — are
/// pure functions of the state.
impl fmt::Debug for Directory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Directory")
            .field("entries", &self.sorted_entries())
            .finish()
    }
}

/// Serialises exactly like the previous `{ "entries": BTreeMap }` layout
/// (stringified keys in the vendored serde's sorted order), so snapshots
/// taken before and after the dense-table change are byte-identical.
impl Serialize for Directory {
    fn to_value(&self) -> Value {
        let map: BTreeMap<u64, DirEntry> = self.sorted_entries().into_iter().collect();
        Value::Object(vec![("entries".to_string(), map.to_value())])
    }
}

impl Deserialize for Directory {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let map: BTreeMap<u64, DirEntry> = de_field(v, "entries")?;
        let mut d = Directory::new();
        for (line, e) in map {
            *d.entry_mut(line) = e;
        }
        Ok(d)
    }
}

/// The retained `BTreeMap` implementation: the differential-test oracle
/// the dense table is checked against (same protocol logic, tree-backed
/// storage whose iteration order is trivially canonical).
#[doc(hidden)]
pub mod reference {
    use super::{DirEntry, LineState, ReadOutcome, WriteOutcome};
    use std::collections::BTreeMap;

    /// Tree-backed directory with the exact pre-dense-table behaviour.
    #[derive(Debug, Clone, Default, PartialEq)]
    pub struct BTreeDirectory {
        entries: BTreeMap<u64, DirEntry>,
    }

    impl BTreeDirectory {
        /// Empty directory.
        pub fn new() -> Self {
            Self::default()
        }

        /// Child `child` wants to read `line`.
        pub fn read(&mut self, line: u64, child: u8) -> ReadOutcome {
            let e = self.entries.entry(line).or_default();
            let prior = e.sharers & !(1 << child);
            let remote = match e.owner {
                Some(o) if o != child => {
                    e.owner = None;
                    Some(o)
                }
                _ => None,
            };
            e.sharers |= 1 << child;
            let alone = e.sharers == 1 << child && e.owner.is_none();
            ReadOutcome {
                remote_fetch_from: remote,
                fill_state: if alone {
                    LineState::Exclusive
                } else {
                    LineState::Shared
                },
                prior_sharers: prior,
            }
        }

        /// Child `child` wants ownership of `line` to write it.
        pub fn write(&mut self, line: u64, child: u8) -> WriteOutcome {
            let e = self.entries.entry(line).or_default();
            let remote = match e.owner {
                Some(o) if o != child => Some(o),
                _ => None,
            };
            let invalidate = e.sharers & !(1 << child);
            e.sharers = 1 << child;
            e.owner = Some(child);
            WriteOutcome {
                invalidate_mask: invalidate,
                remote_fetch_from: remote,
            }
        }

        /// Child `child` evicted its copy of `line`.
        pub fn evict(&mut self, line: u64, child: u8) {
            if let Some(e) = self.entries.get_mut(&line) {
                e.sharers &= !(1 << child);
                if e.owner == Some(child) {
                    e.owner = None;
                }
                if e.sharers == 0 {
                    self.entries.remove(&line);
                }
            }
        }

        /// Current sharer mask.
        pub fn sharers(&self, line: u64) -> u64 {
            self.entries.get(&line).map_or(0, |e| e.sharers)
        }

        /// Current owner.
        pub fn owner(&self, line: u64) -> Option<u8> {
            self.entries.get(&line).and_then(|e| e.owner)
        }

        /// Number of tracked lines.
        pub fn tracked_lines(&self) -> usize {
            self.entries.len()
        }

        /// Entry lines in ascending order.
        pub fn lines(&self) -> impl Iterator<Item = u64> + '_ {
            self.entries.keys().copied()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_reader_gets_exclusive() {
        let mut d = Directory::new();
        let o = d.read(0x100, 3);
        assert_eq!(o.fill_state, LineState::Exclusive);
        assert_eq!(o.remote_fetch_from, None);
        assert_eq!(d.sharers(0x100), 1 << 3);
    }

    #[test]
    fn second_reader_gets_shared() {
        let mut d = Directory::new();
        d.read(0x100, 0);
        let o = d.read(0x100, 1);
        assert_eq!(o.fill_state, LineState::Shared);
        assert_eq!(d.sharers(0x100), 0b11);
    }

    #[test]
    fn write_invalidates_other_sharers() {
        let mut d = Directory::new();
        d.read(0x100, 0);
        d.read(0x100, 1);
        d.read(0x100, 2);
        let o = d.write(0x100, 1);
        assert_eq!(o.invalidate_mask, 0b101);
        assert_eq!(o.remote_fetch_from, None);
        assert_eq!(d.owner(0x100), Some(1));
        assert_eq!(d.sharers(0x100), 0b10);
    }

    #[test]
    fn read_after_modified_downgrades_owner() {
        let mut d = Directory::new();
        d.write(0x100, 0);
        let o = d.read(0x100, 1);
        assert_eq!(o.remote_fetch_from, Some(0));
        assert_eq!(o.fill_state, LineState::Shared);
        assert_eq!(d.owner(0x100), None);
        assert_eq!(d.sharers(0x100), 0b11);
    }

    #[test]
    fn write_after_remote_modified_fetches_and_invalidates() {
        let mut d = Directory::new();
        d.write(0x100, 0);
        let o = d.write(0x100, 1);
        assert_eq!(o.remote_fetch_from, Some(0));
        assert_eq!(o.invalidate_mask, 0b01);
        assert_eq!(d.owner(0x100), Some(1));
    }

    #[test]
    fn own_write_upgrade_is_free() {
        let mut d = Directory::new();
        d.read(0x100, 2);
        let o = d.write(0x100, 2);
        assert_eq!(o.invalidate_mask, 0);
        assert_eq!(o.remote_fetch_from, None);
    }

    #[test]
    fn serialised_form_is_independent_of_construction_order() {
        // The D001 regression this module was converted for: with a
        // HashMap, two directories holding the *same* entries serialise
        // (and report invariant witnesses) in hasher order, which varies
        // per process. The dense table's slot layout *does* depend on the
        // op order, but the serialised form is materialised in canonical
        // order at the boundary, so it must be byte-identical however the
        // state was reached.
        let build = |lines: &[u64]| {
            let mut d = Directory::new();
            for &line in lines {
                d.read(line, 1);
                d.read(line, 2);
            }
            d
        };
        let a = build(&[0x100, 0x240, 0x080, 0x5c0]);
        let b = build(&[0x5c0, 0x080, 0x100, 0x240]);
        assert_eq!(a, b);
        let ja = serde_json::to_string(&a).expect("serialise");
        let jb = serde_json::to_string(&b).expect("serialise");
        assert_eq!(ja, jb, "serialised directory must not depend on op order");
    }

    #[test]
    fn serialised_form_matches_the_btreemap_layout() {
        // Snapshots taken by the old BTreeMap-backed directory must load
        // into the dense one (and vice versa): the wire form is pinned to
        // `{"entries": {"<line>": {"sharers": .., "owner": ..}, ...}}`
        // with the vendored serde's sorted string keys.
        let mut d = Directory::new();
        d.read(0x100, 0);
        d.write(0x240, 3);
        let j = serde_json::to_string(&d).expect("serialise");
        assert_eq!(
            j,
            "{\"entries\":{\"256\":{\"sharers\":1,\"owner\":null},\
             \"576\":{\"sharers\":8,\"owner\":3}}}"
        );
        let back: Directory = serde_json::from_str(&j).expect("deserialise");
        assert_eq!(back, d);
    }

    #[test]
    fn entries_iterate_in_address_order() {
        // check_invariants walks the entries, so its first witness (and
        // any future diagnostic traversal) must be a pure function of the
        // state: ascending line address, never slot-layout order.
        let mut d = Directory::new();
        for line in [0x400u64, 0x100, 0x7c0, 0x240] {
            d.read(line, 0);
        }
        let walked: Vec<u64> = d.sorted_entries().iter().map(|&(k, _)| k).collect();
        assert_eq!(walked, vec![0x100, 0x240, 0x400, 0x7c0]);
    }

    #[test]
    fn eviction_untracks_empty_lines() {
        let mut d = Directory::new();
        d.read(0x100, 0);
        d.read(0x100, 1);
        d.evict(0x100, 0);
        assert_eq!(d.sharers(0x100), 0b10);
        d.evict(0x100, 1);
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn table_grows_and_shrunken_chains_stay_consistent() {
        // Push well past the initial capacity, then evict everything:
        // growth re-homing and backward-shift deletion must preserve
        // every entry and leave no tombstone artefacts behind.
        let mut d = Directory::new();
        for i in 0..500u64 {
            d.read(i << 6, (i % 8) as u8);
        }
        assert_eq!(d.tracked_lines(), 500);
        for i in 0..500u64 {
            assert_eq!(d.sharers(i << 6), 1 << (i % 8), "line {i} after growth");
        }
        for i in (0..500u64).rev() {
            d.evict(i << 6, (i % 8) as u8);
        }
        assert_eq!(d.tracked_lines(), 0);
        assert!(d.check_invariants().is_ok());
    }
}

#[cfg(test)]
mod proptests {
    use super::reference::BTreeDirectory;
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn invariants_hold_under_random_traffic(
            ops in proptest::collection::vec(
                (0u64..8, 0u8..8, 0u8..3), 1..500),
        ) {
            let mut d = Directory::new();
            for (line, child, kind) in ops {
                let line = line << 6;
                match kind {
                    0 => { d.read(line, child); }
                    1 => { d.write(line, child); }
                    _ => { d.evict(line, child); }
                }
                prop_assert!(d.check_invariants().is_ok(), "{:?}", d);
            }
        }

        #[test]
        fn writer_is_always_sole_sharer(
            readers in proptest::collection::vec(0u8..16, 0..16),
            writer in 0u8..16,
        ) {
            let mut d = Directory::new();
            for r in readers {
                d.read(0x40, r);
            }
            d.write(0x40, writer);
            prop_assert_eq!(d.sharers(0x40), 1u64 << writer);
            prop_assert_eq!(d.owner(0x40), Some(writer));
        }

        /// The dense table against the retained BTreeMap oracle: every
        /// protocol outcome, every observable query, and the serialised
        /// form must agree op-for-op under random traffic (including the
        /// growth and backward-shift-deletion paths — a wide line space
        /// forces both).
        #[test]
        fn dense_table_matches_btreemap_reference(
            ops in proptest::collection::vec(
                (0u64..512, 0u8..8, 0u8..3), 1..1000),
        ) {
            let mut dense = Directory::new();
            let mut oracle = BTreeDirectory::new();
            for (i, (line, child, kind)) in ops.into_iter().enumerate() {
                let line = line << 6;
                match kind {
                    0 => {
                        prop_assert_eq!(
                            dense.read(line, child),
                            oracle.read(line, child),
                            "read outcome diverged at op {}", i
                        );
                    }
                    1 => {
                        prop_assert_eq!(
                            dense.write(line, child),
                            oracle.write(line, child),
                            "write outcome diverged at op {}", i
                        );
                    }
                    _ => {
                        dense.evict(line, child);
                        oracle.evict(line, child);
                    }
                }
                prop_assert_eq!(dense.sharers(line), oracle.sharers(line));
                prop_assert_eq!(dense.owner(line), oracle.owner(line));
                prop_assert_eq!(dense.tracked_lines(), oracle.tracked_lines());
            }
            let canonical: Vec<u64> =
                dense.sorted_entries().iter().map(|&(k, _)| k).collect();
            let oracle_lines: Vec<u64> = oracle.lines().collect();
            prop_assert_eq!(canonical, oracle_lines);
            prop_assert!(dense.check_invariants().is_ok());
        }
    }
}
