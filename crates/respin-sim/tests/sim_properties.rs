//! Crate-level property tests: invariants of the simulator that must hold
//! for arbitrary (small) configurations, seeds, and workloads.

use proptest::prelude::*;
use respin_power::MemTech;
use respin_sim::{CacheSizeClass, Chip, ChipConfig, L1Org};
use respin_workloads::Benchmark;

fn tiny_chip(
    l1_org: L1Org,
    tech: MemTech,
    clusters: usize,
    cores: usize,
    bench: Benchmark,
    seed: u64,
    instructions: u64,
) -> Chip {
    let mut config = ChipConfig::nt_base();
    config.l1_org = l1_org;
    config.cache_tech = tech;
    config.clusters = clusters;
    config.cores_per_cluster = cores;
    config.size_class = CacheSizeClass::Small;
    config.instructions_per_thread = Some(instructions);
    config.epoch_instructions = 1_000;
    config.consolidation = true;
    Chip::new(config, &bench.spec(), seed)
}

const BENCHES: [Benchmark; 4] = [
    Benchmark::Fft,
    Benchmark::Ocean,
    Benchmark::Radiosity,
    Benchmark::Swaptions,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every run retires at least the requested instructions, time moves
    /// forward, and energy components are non-negative and additive.
    #[test]
    fn runs_conserve_instructions_and_energy(
        seed in 0u64..50,
        bench_idx in 0usize..4,
        shared in proptest::bool::ANY,
        stt in proptest::bool::ANY,
    ) {
        let org = if shared { L1Org::SharedPerCluster } else { L1Org::Private };
        let tech = if stt { MemTech::SttRam } else { MemTech::Sram };
        let mut chip = tiny_chip(org, tech, 1, 4, BENCHES[bench_idx], seed, 3_000);
        let res = chip.run_to_completion();
        prop_assert!(res.instructions >= 4 * 3_000);
        prop_assert!(res.ticks > 0);
        let e = &res.energy;
        for part in [
            e.core_dynamic_pj,
            e.core_leakage_pj,
            e.cache_dynamic_pj,
            e.cache_leakage_pj,
            e.interconnect_pj,
            e.offchip_pj,
        ] {
            prop_assert!(part >= 0.0 && part.is_finite());
        }
        let total = e.core_dynamic_pj + e.core_leakage_pj + e.cache_dynamic_pj
            + e.cache_leakage_pj + e.interconnect_pj;
        prop_assert!((total - e.chip_total_pj()).abs() < 1e-6);
    }

    /// Arrival fractions always form a distribution and the service
    /// histogram never exceeds the read count.
    #[test]
    fn shared_l1_statistics_are_consistent(seed in 0u64..50, bench_idx in 0usize..4) {
        let mut chip = tiny_chip(
            L1Org::SharedPerCluster,
            MemTech::SttRam,
            1,
            4,
            BENCHES[bench_idx],
            seed,
            2_000,
        );
        let res = chip.run_to_completion();
        let s = res.stats.shared_l1d_merged();
        let total: f64 = (0..5).map(|k| s.arrival_fraction(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let hits: u64 = s.read_hit_core_cycles.iter().sum();
        prop_assert!(hits + s.read_misses <= s.reads);
        prop_assert_eq!(s.read_hit_core_cycles[1] + s.read_hit_core_cycles[2], s.half_misses);
    }

    /// Arbitrary consolidation command sequences keep the virtual→physical
    /// assignment a bijection onto active cores and never lose threads.
    #[test]
    fn consolidation_commands_preserve_assignment(
        seed in 0u64..20,
        counts in proptest::collection::vec(1usize..=8, 1..6),
    ) {
        let mut chip = tiny_chip(
            L1Org::SharedPerCluster,
            MemTech::SttRam,
            1,
            8,
            Benchmark::Fft,
            seed,
            20_000,
        );
        for &count in &counts {
            chip.run_epoch();
            chip.set_active_cores(0, count);
            let cluster = &chip.clusters[0];
            prop_assert_eq!(
                cluster.cores.iter().filter(|c| c.active).count(),
                count.clamp(1, 8)
            );
            let mut seen = vec![0u8; 8];
            for core in &cluster.cores {
                prop_assert!(core.active || core.assigned.is_empty());
                for &vc in &core.assigned {
                    seen[vc] += 1;
                }
            }
            prop_assert!(seen.iter().all(|&s| s == 1), "assignment {seen:?}");
        }
        // And the run still completes with every instruction retired.
        let res = chip.run_to_completion();
        prop_assert!(res.instructions >= 8 * 20_000);
    }

    /// Cloned chips evolve identically (the oracle's soundness condition).
    #[test]
    fn clones_stay_identical(seed in 0u64..30, steps in 1u32..4) {
        let mut chip = tiny_chip(
            L1Org::SharedPerCluster,
            MemTech::SttRam,
            1,
            4,
            Benchmark::Radix,
            seed,
            5_000,
        );
        chip.run_epoch();
        let mut fork = chip.clone();
        for _ in 0..steps {
            let a = chip.run_epoch();
            let b = fork.run_epoch();
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(chip.energy_breakdown(), fork.energy_breakdown());
    }
}

/// Non-proptest crate-level invariants.
#[test]
fn warmup_reset_preserves_forward_progress_and_zeroes_measurement() {
    let mut chip = tiny_chip(
        L1Org::SharedPerCluster,
        MemTech::SttRam,
        2,
        4,
        Benchmark::Fft,
        1,
        6_000,
    );
    chip.run_warmup(8 * 2_000);
    assert_eq!(chip.total_instructions(), 0, "measured counters reset");
    let mid_energy = chip.energy_breakdown().chip_total_pj();
    assert!(mid_energy < 1e-9, "energy accounts reset, got {mid_energy}");
    let res = chip.run_to_completion();
    // The measured window holds the stream minus the warm-up (± overshoot).
    assert!(res.instructions >= 8 * 3_500);
    assert!(res.instructions <= 8 * 4_500);
}

#[test]
fn frequency_bands_respected_across_seeds() {
    for seed in 0..10 {
        let chip = tiny_chip(
            L1Org::SharedPerCluster,
            MemTech::SttRam,
            1,
            8,
            Benchmark::Fft,
            seed,
            100,
        );
        for core in &chip.clusters[0].cores {
            assert!(
                (4..=6).contains(&core.mult),
                "NT band violated: {}",
                core.mult
            );
            assert!(core.leak_factor > 0.3 && core.leak_factor < 3.0);
        }
    }
}
