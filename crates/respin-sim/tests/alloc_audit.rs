//! Allocation audit for the executed-tick hot path.
//!
//! The PR-10 flattening (dense directory, Vec-indexed sync tables, the
//! bucketed deferred wheel, reusable event/sync scratch buffers) exists
//! so that a warmed-up chip steps without touching the heap. This test
//! enforces that property with a counting global allocator: after a
//! warm-up long enough to reach every steady-state capacity, a window
//! of `Chip::advance` calls must perform **zero** allocations.
//!
//! The file holds exactly one test so no sibling test thread can
//! allocate inside the armed window.

// A counting global allocator requires `unsafe impl GlobalAlloc`; the
// unsafety is confined to delegating to `System`.
#![allow(unsafe_code)]
#![allow(clippy::unwrap_used)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::SeqCst) {
            ALLOCS.fetch_add(1, Ordering::SeqCst);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow counts as an allocation: the hot path must not be
        // quietly resizing its scratch either.
        if ARMED.load(Ordering::SeqCst) {
            ALLOCS.fetch_add(1, Ordering::SeqCst);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warmed_hot_path_steps_without_allocating() {
    use respin_sim::{CacheSizeClass, Chip, ChipConfig};
    use respin_workloads::Benchmark;

    // The shared-L1 near-threshold organisation the paper (and
    // fig6_quick) spends its cycles in: 2 clusters x 8 cores, real
    // benchmark ops with barriers and locks so the sync tables see
    // traffic.
    let mut config = ChipConfig::nt_base();
    config.clusters = 2;
    config.cores_per_cluster = 8;
    config.size_class = CacheSizeClass::Medium;
    config.instructions_per_thread = Some(40_000);
    let mut chip = Chip::new(config, &Benchmark::Radix.spec(), 42);

    // Warm-up: long enough for every table, wheel bucket, scratch
    // buffer, and store-buffer Vec to reach steady-state capacity.
    for _ in 0..60_000 {
        if chip.finished() {
            panic!("workload finished during warm-up; grow instructions_per_thread");
        }
        chip.advance();
    }

    ARMED.store(true, Ordering::SeqCst);
    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..20_000 {
        if chip.finished() {
            break;
        }
        chip.advance();
    }
    ARMED.store(false, Ordering::SeqCst);
    let delta = ALLOCS.load(Ordering::SeqCst) - before;

    assert_eq!(
        delta, 0,
        "the warmed executed-tick hot path allocated {delta} time(s) in 20k advances"
    );
}
