//! Scenario tests: targeted behaviours of the simulated machine observed
//! through tiny, purpose-built workloads.

#![allow(clippy::unwrap_used)]

use respin_power::MemTech;
use respin_sim::core::VcState;
use respin_sim::{CacheSizeClass, Chip, ChipConfig, CtxSwitchModel, L1Org};
use respin_workloads::{Benchmark, Phase, PhaseSchedule, WorkloadSpec};

fn spec_with(phase: Phase, instructions: u64) -> WorkloadSpec {
    let mut spec = Benchmark::Fft.spec();
    spec.schedule = PhaseSchedule::new(vec![phase]);
    spec.instructions_per_thread = instructions;
    spec
}

fn base_config(cores: usize) -> ChipConfig {
    let mut c = ChipConfig::nt_base();
    c.clusters = 1;
    c.cores_per_cluster = cores;
    c.size_class = CacheSizeClass::Small;
    c
}

fn compute_phase() -> Phase {
    let mut p = Phase::compute(10_000);
    p.mem_frac = 0.0;
    p.fp_frac = 0.1;
    p.branch_frac = 0.1;
    p.mispredict_rate = 0.0;
    p.idle_prob = 0.0;
    p.barrier_interval = 0;
    p
}

#[test]
fn pure_compute_reaches_dual_issue_throughput() {
    let spec = spec_with(compute_phase(), 8_000);
    let mut chip = Chip::new(base_config(4), &spec, 1);
    let res = chip.run_to_completion();
    // 4 threads × 8000 instructions at ~1.5+ IPC on mult 4-6 cores.
    let slowest_mult = chip.clusters[0].cores.iter().map(|c| c.mult).max().unwrap();
    let core_cycles = res.ticks / slowest_mult;
    let ipc = 8_000.0 / core_cycles as f64;
    assert!(ipc > 1.2, "dual issue should exceed IPC 1.2, got {ipc:.2}");
}

#[test]
fn mispredicts_cost_pipeline_flushes() {
    let clean = {
        let spec = spec_with(compute_phase(), 8_000);
        Chip::new(base_config(4), &spec, 1)
            .run_to_completion()
            .ticks
    };
    let noisy = {
        let mut p = compute_phase();
        p.branch_frac = 0.2;
        p.mispredict_rate = 0.2;
        let spec = spec_with(p, 8_000);
        Chip::new(base_config(4), &spec, 1)
            .run_to_completion()
            .ticks
    };
    // 4% of instructions flush 6 cycles ⇒ ≥15% slower.
    assert!(
        noisy as f64 > clean as f64 * 1.15,
        "mispredicts too cheap: {clean} -> {noisy}"
    );
}

#[test]
fn idle_phases_reduce_ipc_but_not_instruction_count() {
    let mut p = compute_phase();
    p.idle_prob = 0.5;
    p.idle_cycles = 4;
    let spec = spec_with(p, 8_000);
    let mut chip = Chip::new(base_config(4), &spec, 1);
    let res = chip.run_to_completion();
    assert_eq!(res.instructions, 4 * 8_000);
    let busy = {
        let spec = spec_with(compute_phase(), 8_000);
        Chip::new(base_config(4), &spec, 1)
            .run_to_completion()
            .ticks
    };
    assert!(res.ticks > busy * 2, "idle ops must stretch the run");
}

#[test]
fn store_heavy_phases_exercise_buffer_backpressure() {
    let mut p = compute_phase();
    p.mem_frac = 0.5;
    p.store_frac = 1.0;
    p.shared_frac = 0.0;
    let spec = spec_with(p, 6_000);
    let mut chip = Chip::new(base_config(8), &spec, 3);
    let res = chip.run_to_completion();
    assert_eq!(res.instructions, 8 * 6_000);
    let s = res.stats.shared_l1d_merged();
    assert!(s.writes > 8 * 2_000, "stores must reach the write port");
    assert_eq!(s.reads, 0, "no loads in this phase");
}

#[test]
fn lock_contention_serialises_critical_sections() {
    let mut p = compute_phase();
    p.lock_prob = 0.05; // very hot single lock
    let mut spec = spec_with(p, 6_000);
    spec.locks = 1;
    let contended = Chip::new(base_config(8), &spec, 1)
        .run_to_completion()
        .ticks;

    let mut p2 = compute_phase();
    p2.lock_prob = 0.05;
    let mut spec2 = spec_with(p2, 6_000);
    spec2.locks = 64; // same lock rate, spread across many locks
    let spread = Chip::new(base_config(8), &spec2, 1)
        .run_to_completion()
        .ticks;
    assert!(
        contended > spread,
        "single hot lock must serialise: {contended} vs {spread}"
    );
}

#[test]
fn barriers_cost_synchronisation_time() {
    // With per-thread timing variance (random idle stalls), each barrier
    // waits for the *current* straggler, so delays accumulate instead of
    // averaging out: the same work without barriers must be faster.
    // (For perfectly uniform work barriers are nearly free — the slowest
    // core sets the pace either way.)
    let run = |barrier_interval: u64| {
        let mut p = compute_phase();
        p.idle_prob = 0.2;
        p.idle_cycles = 4;
        p.barrier_interval = barrier_interval;
        let spec = spec_with(p, 6_000);
        Chip::new(base_config(8), &spec, 1)
            .run_to_completion()
            .ticks
    };
    let with_barriers = run(250);
    let without = run(0);
    assert!(
        with_barriers as f64 > without as f64 * 1.02,
        "24 barriers must cost time: {without} -> {with_barriers}"
    );
}

#[test]
fn os_context_switching_starves_stacked_threads() {
    let mk = |ctx: CtxSwitchModel| {
        let mut config = base_config(8);
        config.consolidation = true;
        config.ctx_switch = ctx;
        let mut p = compute_phase();
        p.idle_prob = 0.3;
        p.idle_cycles = 4;
        let spec = spec_with(p, 8_000);
        let mut chip = Chip::new(config, &spec, 1);
        chip.set_active_cores(0, 4); // force 2 threads per core
        chip.run_to_completion().ticks
    };
    let hw = mk(CtxSwitchModel::Hardware);
    let os = mk(CtxSwitchModel::Os);
    assert!(
        os as f64 > hw as f64 * 1.2,
        "OS quantum switching must be visibly worse: hw {hw}, os {os}"
    );
}

#[test]
fn private_config_pays_for_write_sharing() {
    let mk = |l1: L1Org, shared_frac: f64| {
        let mut config = base_config(8);
        config.l1_org = l1;
        config.cache_tech = MemTech::SttRam;
        let mut p = compute_phase();
        p.mem_frac = 0.3;
        p.shared_frac = shared_frac;
        p.store_frac = 0.5;
        let spec = spec_with(p, 6_000);
        Chip::new(config, &spec, 1).run_to_completion()
    };
    // Without sharing, organisations are comparable.
    let pr0 = mk(L1Org::Private, 0.0);
    let sh0 = mk(L1Org::SharedPerCluster, 0.0);
    // With write sharing, private coherence must hurt more.
    let pr = mk(L1Org::Private, 0.5);
    let sh = mk(L1Org::SharedPerCluster, 0.5);
    let private_penalty = pr.ticks as f64 / pr0.ticks as f64;
    let shared_penalty = sh.ticks as f64 / sh0.ticks as f64;
    assert!(
        private_penalty > shared_penalty,
        "write sharing must penalise private L1s more: {private_penalty:.3} vs {shared_penalty:.3}"
    );
    assert!(pr.stats.coherence_messages > sh.stats.coherence_messages);
}

#[test]
fn finished_threads_park_in_finished_state() {
    let spec = spec_with(compute_phase(), 1_000);
    let mut chip = Chip::new(base_config(4), &spec, 1);
    chip.run_to_completion();
    for v in &chip.clusters[0].vcores {
        assert_eq!(v.state, VcState::Finished);
    }
    assert!(chip.finished());
}

#[test]
fn migration_penalty_visible_in_runtime() {
    // Thrash consolidation on/off every epoch: the run with forced
    // migrations must be slower than the untouched one.
    let mk = |thrash: bool| {
        let mut config = base_config(8);
        config.consolidation = true;
        config.epoch_instructions = 1_000;
        let spec = spec_with(compute_phase(), 12_000);
        let mut chip = Chip::new(config, &spec, 1);
        let mut flip = false;
        loop {
            let rep = chip.run_epoch();
            if rep.finished {
                break;
            }
            if thrash {
                chip.set_active_cores(0, if flip { 8 } else { 7 });
                flip = !flip;
            }
        }
        chip.result()
    };
    let calm = mk(false);
    let thrashed = mk(true);
    assert!(thrashed.stats.migrations > 10);
    assert!(
        thrashed.ticks > calm.ticks,
        "migrations must cost time: {} vs {}",
        thrashed.ticks,
        calm.ticks
    );
}
