//! Trait validation for every benchmark in the suite: the paper's
//! evaluation depends on specific per-benchmark behaviours (ocean's
//! barrier density, raytrace's read sharing, radix's idle depth, …).
//! These tests pin the calibrated parameter blocks so a regression in the
//! generators shows up here rather than as silently wrong figures.

use respin_workloads::ops::address_space;
use respin_workloads::{Benchmark, Op, ThreadGen};

struct Profile {
    instructions: u64,
    barriers: u64,
    lock_acquires: u64,
    mem_ops: u64,
    shared_ops: u64,
    shared_stores: u64,
    fp_ops: u64,
    idle_cycles: u64,
}

fn profile(bench: Benchmark, thread: usize, seed: u64) -> Profile {
    let mut spec = bench.spec();
    spec.instructions_per_thread = 60_000;
    let mut p = Profile {
        instructions: 0,
        barriers: 0,
        lock_acquires: 0,
        mem_ops: 0,
        shared_ops: 0,
        shared_stores: 0,
        fp_ops: 0,
        idle_cycles: 0,
    };
    for op in ThreadGen::new(&spec, thread, seed) {
        if op.is_instruction() {
            p.instructions += 1;
        }
        match op {
            Op::Barrier { .. } => p.barriers += 1,
            Op::LockAcq { .. } => p.lock_acquires += 1,
            Op::Fp => p.fp_ops += 1,
            Op::Idle { cycles } => p.idle_cycles += cycles as u64,
            Op::Load { addr } => {
                p.mem_ops += 1;
                if address_space::is_shared(addr) {
                    p.shared_ops += 1;
                }
            }
            Op::Store { addr } => {
                p.mem_ops += 1;
                if address_space::is_shared(addr) {
                    p.shared_ops += 1;
                    p.shared_stores += 1;
                }
            }
            _ => {}
        }
    }
    p
}

#[test]
fn ocean_is_the_barrier_champion() {
    let ocean = profile(Benchmark::Ocean, 0, 1);
    assert!(
        ocean.barriers >= 30,
        "ocean: {} barriers in 60 K instructions",
        ocean.barriers
    );
    for other in [
        Benchmark::Raytrace,
        Benchmark::Swaptions,
        Benchmark::Radiosity,
    ] {
        let p = profile(other, 0, 1);
        assert!(
            ocean.barriers > 3 * p.barriers,
            "{}: {} barriers vs ocean {}",
            other.name(),
            p.barriers,
            ocean.barriers
        );
    }
}

#[test]
fn raytrace_leads_the_suite_in_read_sharing() {
    let ray = profile(Benchmark::Raytrace, 0, 1);
    let ray_frac = ray.shared_ops as f64 / ray.mem_ops as f64;
    assert!(ray_frac > 0.35, "raytrace shared fraction {ray_frac}");
    // Read-mostly: the damped store fraction keeps shared stores rare.
    assert!(
        ray.shared_stores * 10 < ray.shared_ops,
        "raytrace must be read-mostly: {} stores of {} shared ops",
        ray.shared_stores,
        ray.shared_ops
    );
    for other in Benchmark::ALL {
        if other == Benchmark::Raytrace {
            continue;
        }
        let p = profile(other, 0, 1);
        let frac = p.shared_ops as f64 / p.mem_ops.max(1) as f64;
        assert!(
            ray_frac >= frac,
            "{} out-shares raytrace: {frac} vs {ray_frac}",
            other.name()
        );
    }
}

#[test]
fn radiosity_and_cholesky_are_the_lock_users() {
    let heavy = profile(Benchmark::Radiosity, 0, 1);
    assert!(heavy.lock_acquires > 100, "{}", heavy.lock_acquires);
    let light = profile(Benchmark::Cholesky, 0, 1);
    assert!(light.lock_acquires > 0);
    assert!(heavy.lock_acquires > light.lock_acquires);
    for lock_free in [Benchmark::Fft, Benchmark::Ocean, Benchmark::Radix] {
        assert_eq!(
            profile(lock_free, 0, 1).lock_acquires,
            0,
            "{} must be lock-free",
            lock_free.name()
        );
    }
}

#[test]
fn fp_intensity_ranks_the_compute_benchmarks() {
    let swaptions = profile(Benchmark::Swaptions, 0, 1);
    let radix = profile(Benchmark::Radix, 0, 1);
    assert!(
        swaptions.fp_ops > 10 * radix.fp_ops.max(1),
        "swaptions (Monte-Carlo FP) vs radix (integer sort): {} vs {}",
        swaptions.fp_ops,
        radix.fp_ops
    );
}

#[test]
fn idle_depth_orders_the_consolidation_candidates() {
    // The Figure 14 floor/ceiling structure requires the steady PARSEC
    // codes to stall far less than the phase-heavy sorts.
    let radix = profile(Benchmark::Radix, 0, 1);
    let black = profile(Benchmark::Blackscholes, 0, 1);
    let swap = profile(Benchmark::Swaptions, 0, 1);
    assert!(radix.idle_cycles > 2 * black.idle_cycles);
    assert!(radix.idle_cycles > 2 * swap.idle_cycles);
}

#[test]
fn every_benchmark_profile_is_stable_across_threads_and_seeds() {
    // Trait magnitudes (not exact streams) must be robust to thread id and
    // seed — otherwise suite means would depend on the chip size.
    for bench in Benchmark::ALL {
        let a = profile(bench, 0, 1);
        let b = profile(bench, 7, 9);
        let rel = |x: u64, y: u64| {
            let (x, y) = (x as f64, y as f64);
            (x - y).abs() / x.max(y).max(1.0)
        };
        assert!(
            rel(a.mem_ops, b.mem_ops) < 0.1,
            "{}: mem ops {} vs {}",
            bench.name(),
            a.mem_ops,
            b.mem_ops
        );
        assert_eq!(a.barriers, b.barriers, "{}", bench.name());
        assert!(
            rel(a.idle_cycles, b.idle_cycles) < 0.15,
            "{}: idle {} vs {}",
            bench.name(),
            a.idle_cycles,
            b.idle_cycles
        );
    }
}

#[test]
fn memory_intensity_spans_a_realistic_range() {
    for bench in Benchmark::ALL {
        let p = profile(bench, 0, 1);
        let frac = p.mem_ops as f64 / p.instructions as f64;
        assert!(
            (0.1..=0.55).contains(&frac),
            "{}: memory fraction {frac}",
            bench.name()
        );
    }
}
