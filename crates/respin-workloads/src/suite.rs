//! The benchmark suite: synthetic analogues of the nine SPLASH2 and four
//! PARSEC programs the paper evaluates.
//!
//! Each benchmark's parameter block encodes the trait the paper's results
//! hinge on. The comments on each spec name that trait and the figure it
//! feeds. Working-set sizes are chosen against the Table I hierarchy
//! (16 KB private / 256 KB cluster-shared L1D) so that private caches feel
//! capacity and coherence pressure that the cluster-shared design relieves.

use crate::phases::{Phase, PhaseSchedule};
use serde::{Deserialize, Serialize};

/// Default retired instructions per thread for full experiment runs.
pub const DEFAULT_INSTRUCTIONS_PER_THREAD: u64 = 160_000;

/// A fully-parameterised workload, ready to instantiate per-thread
/// generators from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Benchmark name (paper spelling).
    pub name: &'static str,
    /// Cyclic phase schedule.
    pub schedule: PhaseSchedule,
    /// Per-thread private working-set size, bytes.
    pub private_ws_bytes: u64,
    /// Program-wide shared working-set size, bytes.
    pub shared_ws_bytes: u64,
    /// Number of distinct locks (0 = lock-free program).
    pub locks: u32,
    /// Per-benchmark salt mixed into stream seeds so different benchmarks
    /// with the same global seed get unrelated streams.
    pub seed_salt: u64,
    /// Retired instructions per thread.
    pub instructions_per_thread: u64,
}

/// The thirteen benchmarks of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Benchmark {
    Barnes,
    Cholesky,
    Fft,
    Lu,
    Ocean,
    Radiosity,
    Radix,
    Raytrace,
    WaterNsq,
    Blackscholes,
    Bodytrack,
    Streamcluster,
    Swaptions,
}

impl Benchmark {
    /// All benchmarks, SPLASH2 first, in the paper's listing order.
    pub const ALL: [Benchmark; 13] = [
        Benchmark::Barnes,
        Benchmark::Cholesky,
        Benchmark::Fft,
        Benchmark::Lu,
        Benchmark::Ocean,
        Benchmark::Radiosity,
        Benchmark::Radix,
        Benchmark::Raytrace,
        Benchmark::WaterNsq,
        Benchmark::Blackscholes,
        Benchmark::Bodytrack,
        Benchmark::Streamcluster,
        Benchmark::Swaptions,
    ];

    /// The SPLASH2 subset.
    pub const SPLASH2: [Benchmark; 9] = [
        Benchmark::Barnes,
        Benchmark::Cholesky,
        Benchmark::Fft,
        Benchmark::Lu,
        Benchmark::Ocean,
        Benchmark::Radiosity,
        Benchmark::Radix,
        Benchmark::Raytrace,
        Benchmark::WaterNsq,
    ];

    /// The PARSEC subset.
    pub const PARSEC: [Benchmark; 4] = [
        Benchmark::Blackscholes,
        Benchmark::Bodytrack,
        Benchmark::Streamcluster,
        Benchmark::Swaptions,
    ];

    /// Benchmark name with the paper's spelling.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Barnes => "barnes",
            Benchmark::Cholesky => "cholesky",
            Benchmark::Fft => "fft",
            Benchmark::Lu => "lu",
            Benchmark::Ocean => "ocean",
            Benchmark::Radiosity => "radiosity",
            Benchmark::Radix => "radix",
            Benchmark::Raytrace => "raytrace",
            Benchmark::WaterNsq => "water-nsq",
            Benchmark::Blackscholes => "blackscholes",
            Benchmark::Bodytrack => "bodytrack",
            Benchmark::Streamcluster => "streamcluster",
            Benchmark::Swaptions => "swaptions",
        }
    }

    /// Looks a benchmark up by its paper name.
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::ALL.into_iter().find(|b| b.name() == name)
    }

    /// Builds the full workload specification for this benchmark.
    pub fn spec(self) -> WorkloadSpec {
        let kib = |n: u64| n * 1024;
        // Shorthand for a phase with common fields defaulted from compute().
        let ph = |instructions: u64,
                  mem: f64,
                  shared: f64,
                  store: f64,
                  fp: f64,
                  idle_prob: f64,
                  idle_cycles: u16,
                  barrier: u64| Phase {
            instructions,
            mem_frac: mem,
            store_frac: store,
            shared_frac: shared,
            fp_frac: fp,
            branch_frac: 0.15,
            mispredict_rate: 0.05,
            idle_prob,
            idle_cycles,
            barrier_interval: barrier,
            lock_prob: 0.0,
        };

        let (schedule, private_ws, shared_ws, locks) = match self {
            // N-body: tree build (irregular, shared, stally) alternating
            // with force computation (FP heavy, parallel).
            Benchmark::Barnes => (
                PhaseSchedule::new(vec![
                    ph(24_000, 0.30, 0.25, 0.30, 0.05, 0.40, 4, 8_000),
                    ph(40_000, 0.22, 0.12, 0.20, 0.30, 0.10, 2, 8_000),
                ]),
                kib(24),
                kib(192),
                0,
            ),
            // Sparse factorisation: parallelism shrinks as elimination
            // proceeds (rising idle), light locking on the task queue.
            Benchmark::Cholesky => (
                PhaseSchedule::new(vec![
                    Phase {
                        lock_prob: 0.002,
                        ..ph(30_000, 0.30, 0.20, 0.30, 0.20, 0.10, 3, 0)
                    },
                    Phase {
                        lock_prob: 0.002,
                        ..ph(25_000, 0.30, 0.20, 0.30, 0.20, 0.30, 4, 0)
                    },
                    Phase {
                        lock_prob: 0.002,
                        ..ph(20_000, 0.30, 0.20, 0.30, 0.20, 0.55, 5, 0)
                    },
                ]),
                kib(32),
                kib(256),
                32,
            ),
            // FFT: compute butterflies, then all-to-all transpose (memory
            // and sharing heavy, stalls on remote data).
            Benchmark::Fft => (
                PhaseSchedule::new(vec![
                    ph(30_000, 0.20, 0.10, 0.30, 0.35, 0.05, 2, 0),
                    ph(15_000, 0.45, 0.35, 0.45, 0.05, 0.35, 4, 15_000),
                ]),
                kib(32),
                kib(256),
                0,
            ),
            // LU: long, slowly shrinking parallel sections — the gradual
            // ramp the greedy search chases in Figure 13.
            Benchmark::Lu => (
                PhaseSchedule::new(vec![
                    ph(35_000, 0.28, 0.15, 0.30, 0.25, 0.05, 2, 10_000),
                    ph(30_000, 0.28, 0.15, 0.30, 0.25, 0.20, 3, 10_000),
                    ph(25_000, 0.28, 0.15, 0.30, 0.25, 0.40, 4, 10_000),
                    ph(20_000, 0.28, 0.15, 0.30, 0.25, 0.60, 6, 10_000),
                ]),
                kib(24),
                kib(192),
                0,
            ),
            // Ocean: "hundreds of barriers" — dense barrier grid plus
            // near-neighbour sharing; the shared-L1 synchronisation win.
            Benchmark::Ocean => (
                PhaseSchedule::new(vec![ph(40_000, 0.35, 0.20, 0.35, 0.20, 0.25, 3, 1_500)]),
                kib(32),
                kib(256),
                0,
            ),
            // Radiosity: task-stealing with locks; irregular parallelism.
            Benchmark::Radiosity => (
                PhaseSchedule::new(vec![
                    Phase {
                        lock_prob: 0.010,
                        ..ph(25_000, 0.32, 0.30, 0.35, 0.10, 0.20, 3, 0)
                    },
                    Phase {
                        lock_prob: 0.010,
                        ..ph(20_000, 0.32, 0.30, 0.35, 0.10, 0.50, 5, 0)
                    },
                ]),
                kib(24),
                kib(384),
                64,
            ),
            // Radix sort: sharply alternating count/scatter/drain phases,
            // the Figure 12 consolidation showcase. Even its busiest phase
            // stalls enough that ≥5 of 16 cores stay consolidated
            // (Figure 14: radix activates at most 11 cores).
            Benchmark::Radix => (
                PhaseSchedule::new(vec![
                    ph(22_000, 0.50, 0.25, 0.30, 0.00, 0.30, 3, 11_000),
                    ph(18_000, 0.55, 0.35, 0.55, 0.00, 0.55, 5, 9_000),
                    ph(12_000, 0.35, 0.20, 0.25, 0.00, 0.75, 7, 0),
                ]),
                kib(48),
                kib(384),
                0,
            ),
            // Raytrace: dominated by read-shared scene traversal with heavy
            // reuse — the biggest beneficiary of the cluster-shared L1
            // (Figure 7).
            Benchmark::Raytrace => (
                PhaseSchedule::new(vec![Phase {
                    lock_prob: 0.001,
                    ..ph(40_000, 0.38, 0.45, 0.10, 0.15, 0.20, 3, 0)
                }]),
                kib(16),
                kib(256),
                16,
            ),
            // Water-nsquared: balanced compute with periodic barriers.
            Benchmark::WaterNsq => (
                PhaseSchedule::new(vec![
                    ph(30_000, 0.25, 0.12, 0.30, 0.30, 0.15, 2, 12_000),
                    ph(20_000, 0.25, 0.12, 0.30, 0.30, 0.35, 4, 12_000),
                ]),
                kib(24),
                kib(128),
                0,
            ),
            // Blackscholes: embarrassingly parallel FP; its quietest phase
            // still keeps ≥6 cores busy (Figure 14 floor).
            Benchmark::Blackscholes => (
                PhaseSchedule::new(vec![
                    ph(45_000, 0.20, 0.05, 0.25, 0.35, 0.05, 2, 0),
                    ph(20_000, 0.25, 0.05, 0.25, 0.30, 0.30, 4, 0),
                ]),
                kib(16),
                kib(64),
                0,
            ),
            // Bodytrack: pipeline stages separated by barriers, alternating
            // busy and lean stages.
            Benchmark::Bodytrack => (
                PhaseSchedule::new(vec![
                    ph(25_000, 0.30, 0.20, 0.30, 0.25, 0.15, 3, 6_000),
                    ph(20_000, 0.30, 0.20, 0.30, 0.25, 0.50, 5, 6_000),
                ]),
                kib(24),
                kib(192),
                8,
            ),
            // Streamcluster: streaming distance computations over shared
            // centres; memory bound.
            Benchmark::Streamcluster => (
                PhaseSchedule::new(vec![ph(40_000, 0.50, 0.30, 0.15, 0.20, 0.35, 4, 8_000)]),
                kib(48),
                kib(256),
                0,
            ),
            // Swaptions: compute-bound Monte Carlo, minimal sharing, steady
            // high parallelism.
            Benchmark::Swaptions => (
                PhaseSchedule::new(vec![ph(50_000, 0.18, 0.05, 0.25, 0.40, 0.08, 2, 0)]),
                kib(16),
                kib(64),
                0,
            ),
        };

        WorkloadSpec {
            name: self.name(),
            schedule,
            private_ws_bytes: private_ws,
            shared_ws_bytes: shared_ws,
            locks,
            seed_salt: 0xB5 + self as u64 * 0x1000_0001,
            instructions_per_thread: DEFAULT_INSTRUCTIONS_PER_THREAD,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::ThreadGen;
    use crate::ops::Op;

    #[test]
    fn all_specs_build_and_validate() {
        for b in Benchmark::ALL {
            let spec = b.spec();
            assert_eq!(spec.name, b.name());
            assert!(spec.instructions_per_thread > 0);
            assert!(spec.private_ws_bytes >= 1024);
            assert!(spec.shared_ws_bytes >= 1024);
            for p in spec.schedule.phases() {
                p.validate().unwrap();
            }
        }
    }

    #[test]
    fn name_roundtrip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
        }
        assert_eq!(Benchmark::from_name("nonesuch"), None);
    }

    #[test]
    fn groupings_partition_the_suite() {
        assert_eq!(Benchmark::SPLASH2.len() + Benchmark::PARSEC.len(), 13);
        for b in Benchmark::ALL {
            let in_s = Benchmark::SPLASH2.contains(&b);
            let in_p = Benchmark::PARSEC.contains(&b);
            assert!(in_s ^ in_p, "{b:?} must be in exactly one suite");
        }
    }

    #[test]
    fn seed_salts_are_unique() {
        let mut salts: Vec<u64> = Benchmark::ALL.iter().map(|b| b.spec().seed_salt).collect();
        salts.sort_unstable();
        salts.dedup();
        assert_eq!(salts.len(), 13);
    }

    #[test]
    fn ocean_emits_hundreds_of_barriers() {
        let spec = Benchmark::Ocean.spec();
        let n = ThreadGen::new(&spec, 0, 1)
            .filter(|op| matches!(op, Op::Barrier { .. }))
            .count();
        assert!(n >= 100, "ocean emitted only {n} barriers");
    }

    #[test]
    fn raytrace_is_sharing_heavy() {
        let spec = Benchmark::Raytrace.spec();
        let mut shared = 0usize;
        let mut total = 0usize;
        for op in ThreadGen::new(&spec, 0, 1) {
            if let Some(addr) = op.address() {
                total += 1;
                if crate::ops::address_space::is_shared(addr) {
                    shared += 1;
                }
            }
        }
        let frac = shared as f64 / total as f64;
        assert!(frac > 0.35, "raytrace shared fraction {frac}");
        // And read-mostly: stores to shared data are rare.
        let mut shared_stores = 0usize;
        for op in ThreadGen::new(&spec, 0, 1) {
            if let Op::Store { addr } = op {
                if crate::ops::address_space::is_shared(addr) {
                    shared_stores += 1;
                }
            }
        }
        assert!(shared_stores * 4 < shared, "raytrace should be read-mostly");
    }

    #[test]
    fn idle_density_orders_blackscholes_below_radix() {
        // Blackscholes must look busier (fewer stall cycles) than radix —
        // that ordering is what gives Figure 14 its floor/ceiling shape.
        let stall_cycles = |b: Benchmark| -> u64 {
            let mut spec = b.spec();
            spec.instructions_per_thread = 30_000;
            ThreadGen::new(&spec, 0, 1)
                .filter_map(|op| match op {
                    Op::Idle { cycles } => Some(cycles as u64),
                    _ => None,
                })
                .sum()
        };
        let bs = stall_cycles(Benchmark::Blackscholes);
        let rx = stall_cycles(Benchmark::Radix);
        assert!(
            bs * 2 < rx,
            "blackscholes stalls {bs} not well below radix {rx}"
        );
    }
}
