//! # respin-workloads — synthetic SPLASH2/PARSEC-analogue workloads
//!
//! The Respin paper evaluates with nine SPLASH2 benchmarks (reference
//! inputs) and four PARSEC benchmarks (sim-small). Real program binaries
//! cannot be executed on a from-scratch trace-driven simulator, so this
//! crate provides *synthetic analogues*: seeded, phase-structured
//! instruction-stream generators whose parameters encode the traits the
//! paper's evaluation actually depends on —
//!
//! * **data sharing and reuse** (raytrace benefits most from the shared L1),
//! * **synchronisation intensity** (ocean has "hundreds of barriers"),
//! * **phase dynamics** (radix and lu drive the consolidation traces of
//!   Figures 12/13; blackscholes never drops below ~6 active cores),
//! * **memory intensity** and **instruction mix** (power/energy breakdowns).
//!
//! Each generator is deterministic in `(spec, thread, seed)`; the simulator
//! pulls [`Op`]s one at a time via [`ThreadGen`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// Tests may unwrap: a panic IS the failure report there.
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(clippy::all)]

pub mod gen;
pub mod ops;
pub mod phases;
pub mod suite;

pub use gen::ThreadGen;
pub use ops::Op;
pub use phases::{Phase, PhaseSchedule};
pub use suite::{Benchmark, WorkloadSpec};
