//! Per-thread instruction-stream generator.
//!
//! [`ThreadGen`] turns a [`WorkloadSpec`](crate::suite::WorkloadSpec) into a
//! deterministic stream of [`Op`]s for one thread. Determinism and
//! cloneability matter: the simulator's oracle consolidation policy replays
//! epochs on cloned simulator state, which includes cloned generators.
//!
//! Address streams use a two-segment model (see [`crate::ops::address_space`]):
//! a per-thread private segment walked mostly sequentially with occasional
//! random jumps, and a program-wide shared segment with a *hot subset* that
//! concentrates reuse (this hot-set reuse is what the cluster-shared L1
//! converts from coherence misses into plain hits).

use crate::ops::{address_space, Op};
use crate::phases::Phase;
use crate::suite::WorkloadSpec;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{de_field, Deserialize, Error, Serialize, Value};
use std::collections::VecDeque;

/// Private-segment locality model. Real programs concentrate most dynamic
/// references on a small hot set (stack frames, loop-carried locals):
/// `HOT` of accesses land in a 4 KiB hot region, `WALK` continue a
/// sequential stream over the full working set, and the rest jump randomly
/// within the working set. The resulting L1 behaviour (high but imperfect
/// hit rates, streaming misses, capacity pressure beyond the hot set) is
/// what the paper's cache comparisons rely on.
const PRIVATE_HOT_FRAC: f64 = 0.90;
const PRIVATE_WALK_FRAC: f64 = 0.05;
/// Size of the private hot region, bytes.
const PRIVATE_HOT_BYTES: u64 = 4 * 1024;
/// Stride of the sequential walk, bytes.
const WALK_STRIDE: u64 = 8;
/// Per-thread placement offset ("page colouring"). Segment bases are
/// 4 GiB-aligned, and power-of-two caches map all 4 GiB-aligned windows
/// onto the same sets — so without this offset, every thread's working set
/// would fight over the same few thousand L2 sets, something no real
/// OS/allocator produces. 8320 = 130 × 64: coprime-ish with the set counts
/// of every level (L1 2048, L2 32768, L3 24576 sets), so thread windows
/// spread across the whole index space.
const THREAD_COLOR_STRIDE: u64 = 8320;
/// Fraction of shared-segment accesses that hit the hot subset.
const SHARED_HOT_FRAC: f64 = 0.85;
/// The hot subset is this fraction of the shared working set. A quarter of
/// a typical 256 KiB shared segment is 64 KiB — too big for a small (4-core,
/// 64 KiB) cluster-shared L1 next to the private hot sets, but comfortable
/// in the 16-core (256 KiB) configuration: the capacity side of the §V-D
/// cluster-size trade-off.
const SHARED_HOT_DIV: u64 = 4;
/// Stores to the shared segment are damped by this factor relative to the
/// phase's store fraction: shared program data is read-mostly (scene
/// graphs, matrices being consumed), and undamped write-sharing would
/// drown every configuration in invalidation traffic no real SPLASH2
/// program exhibits.
const SHARED_STORE_DAMP: f64 = 0.25;
/// Length of a generated critical section, instructions between acquire and
/// release.
const CRITICAL_SECTION_LEN: usize = 4;

/// Deterministic op stream for one thread of a workload.
#[derive(Debug, Clone)]
pub struct ThreadGen {
    spec: WorkloadSpec,
    thread: usize,
    rng: ChaCha8Rng,
    /// Retired-instruction count so far (drives phase/barrier positions).
    instrs: u64,
    /// Instruction budget. Streams retire at least this many instructions;
    /// a critical section opened just before the budget runs out completes
    /// before `Done` (locks always balance), so lock-bearing benchmarks may
    /// overshoot by a few instructions.
    total_instrs: u64,
    /// Ops queued ahead of the next fresh draw (stalls, critical sections).
    pending: VecDeque<Op>,
    /// Sequential-walk pointer within the private segment.
    walk_ptr: u64,
    /// Start of this thread's hot region within its private segment.
    /// Randomised per thread so hot regions of different threads do not
    /// alias onto the same cache sets of a cluster-shared L1 (the segment
    /// bases themselves are 4 GiB-aligned).
    hot_start: u64,
    /// Page-colouring offset added to all private addresses (see
    /// [`THREAD_COLOR_STRIDE`]).
    color: u64,
    /// Next barrier id to emit.
    next_barrier_id: u32,
    /// Instruction index at which the last barrier fired (guards repeats).
    last_barrier_at: u64,
    done: bool,
}

impl ThreadGen {
    /// Creates the generator for `thread` of `n_threads` with the global
    /// `seed`. Streams for different threads/seeds/specs are independent.
    pub fn new(spec: &WorkloadSpec, thread: usize, seed: u64) -> Self {
        // Mix the spec identity, thread id, and seed into the stream seed.
        let stream_seed = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(spec.seed_salt)
            .wrapping_add((thread as u64) << 32);
        let mut rng = ChaCha8Rng::seed_from_u64(stream_seed);
        let ws = spec.private_ws_bytes.max(64);
        let hot = PRIVATE_HOT_BYTES.min(ws);
        let hot_start = if ws > hot {
            rng.gen_range(0..(ws - hot)) & !63
        } else {
            0
        };
        let walk_ptr = rng.gen_range(0..ws) & !7;
        let color = thread as u64 * THREAD_COLOR_STRIDE;
        Self {
            spec: spec.clone(),
            thread,
            rng,
            instrs: 0,
            total_instrs: spec.instructions_per_thread,
            pending: VecDeque::new(),
            walk_ptr,
            hot_start,
            color,
            next_barrier_id: 0,
            last_barrier_at: u64::MAX,
            done: false,
        }
    }

    /// Retired instructions generated so far.
    pub fn instructions(&self) -> u64 {
        self.instrs
    }

    /// The thread index this stream belongs to.
    pub fn thread(&self) -> usize {
        self.thread
    }

    /// True once the stream has emitted [`Op::Done`].
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Produces the next operation.
    pub fn next_op(&mut self) -> Op {
        if let Some(op) = self.pending.pop_front() {
            if op.is_instruction() {
                self.instrs += 1;
            }
            return op;
        }
        if self.done || self.instrs >= self.total_instrs {
            self.done = true;
            return Op::Done;
        }

        let phase = *self.spec.schedule.phase_at(self.instrs);

        // Barrier positions are pure functions of the instruction index so
        // every thread emits an identical barrier sequence.
        if phase.barrier_interval > 0
            && self.instrs > 0
            && self.instrs.is_multiple_of(phase.barrier_interval)
            && self.last_barrier_at != self.instrs
        {
            self.last_barrier_at = self.instrs;
            let id = self.next_barrier_id;
            self.next_barrier_id += 1;
            self.instrs += 1;
            return Op::Barrier { id };
        }

        // Occasionally open a critical section (queued as a unit).
        if phase.lock_prob > 0.0 && self.rng.gen_bool(phase.lock_prob) {
            let lock = self.rng.gen_range(0..self.spec.locks.max(1));
            self.pending.push_back(Op::LockAcq { lock });
            for _ in 0..CRITICAL_SECTION_LEN {
                // Critical sections touch shared data by construction.
                let addr = self.shared_address();
                let op = if self.rng.gen_bool(0.5) {
                    Op::Store { addr }
                } else {
                    Op::Load { addr }
                };
                self.pending.push_back(op);
            }
            self.pending.push_back(Op::LockRel { lock });
            let op = self.pending.pop_front().expect("just queued");
            self.instrs += 1; // LockAcq retires
            return op;
        }

        let op = self.draw_instruction(&phase);
        self.instrs += 1;

        // Dependency stalls follow the instruction that heads the chain.
        if phase.idle_prob > 0.0 && self.rng.gen_bool(phase.idle_prob) {
            let cycles = 1 + self.rng.gen_range(0..phase.idle_cycles.max(1) * 2);
            self.pending.push_back(Op::Idle { cycles });
        }
        op
    }

    fn draw_instruction(&mut self, phase: &Phase) -> Op {
        let r: f64 = self.rng.gen();
        if r < phase.mem_frac {
            let shared = self.rng.gen_bool(phase.shared_frac);
            let addr = if shared {
                self.shared_address()
            } else {
                self.private_address()
            };
            let store_frac = if shared {
                phase.store_frac * SHARED_STORE_DAMP
            } else {
                phase.store_frac
            };
            if self.rng.gen_bool(store_frac) {
                Op::Store { addr }
            } else {
                Op::Load { addr }
            }
        } else if r < phase.mem_frac + phase.fp_frac {
            Op::Fp
        } else if r < phase.mem_frac + phase.fp_frac + phase.branch_frac {
            Op::Branch {
                mispredict: self.rng.gen_bool(phase.mispredict_rate),
            }
        } else {
            Op::Int
        }
    }

    fn private_address(&mut self) -> u64 {
        let ws = self.spec.private_ws_bytes.max(64);
        let hot = PRIVATE_HOT_BYTES.min(ws);
        let r: f64 = self.rng.gen();
        let offset = if r < PRIVATE_HOT_FRAC {
            (self.hot_start + (self.rng.gen_range(0..hot) & !7)) % ws
        } else if r < PRIVATE_HOT_FRAC + PRIVATE_WALK_FRAC {
            // The walk streams through the cold part of the working set.
            self.walk_ptr = (self.walk_ptr + WALK_STRIDE) % ws;
            self.walk_ptr
        } else {
            self.rng.gen_range(0..ws) & !7
        };
        address_space::private_base(self.thread) + self.color + offset
    }

    fn shared_address(&mut self) -> u64 {
        let ws = self.spec.shared_ws_bytes.max(64);
        let offset = if self.rng.gen_bool(SHARED_HOT_FRAC) {
            self.rng.gen_range(0..(ws / SHARED_HOT_DIV).max(64)) & !7
        } else {
            self.rng.gen_range(0..ws) & !7
        };
        address_space::SHARED_BASE + offset
    }
}

// Hand-written (rather than derived) because the RNG needs its state
// tuple flattened: the keystream block is regenerated on restore, so the
// snapshot carries only (key, counter, stream, index). Everything else is
// plain data. Restored generators continue bit-identically — the chip
// snapshot roundtrip tests in respin-sim/respin-core depend on it.
impl Serialize for ThreadGen {
    fn to_value(&self) -> Value {
        let (rng_key, rng_counter, rng_stream, rng_index) = self.rng.state();
        Value::Object(vec![
            ("spec".to_string(), self.spec.to_value()),
            ("thread".to_string(), self.thread.to_value()),
            ("rng_key".to_string(), rng_key.to_value()),
            ("rng_counter".to_string(), rng_counter.to_value()),
            ("rng_stream".to_string(), rng_stream.to_value()),
            ("rng_index".to_string(), rng_index.to_value()),
            ("instrs".to_string(), self.instrs.to_value()),
            ("total_instrs".to_string(), self.total_instrs.to_value()),
            ("pending".to_string(), self.pending.to_value()),
            ("walk_ptr".to_string(), self.walk_ptr.to_value()),
            ("hot_start".to_string(), self.hot_start.to_value()),
            ("color".to_string(), self.color.to_value()),
            (
                "next_barrier_id".to_string(),
                self.next_barrier_id.to_value(),
            ),
            (
                "last_barrier_at".to_string(),
                self.last_barrier_at.to_value(),
            ),
            ("done".to_string(), self.done.to_value()),
        ])
    }
}

impl Deserialize for ThreadGen {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let rng_key: [u32; 8] = de_field(v, "rng_key")?;
        let rng_counter: u64 = de_field(v, "rng_counter")?;
        let rng_stream: u64 = de_field(v, "rng_stream")?;
        let rng_index: usize = de_field(v, "rng_index")?;
        if rng_index > 16 {
            return Err(Error::custom(format!(
                "rng_index {rng_index} out of range (block has 16 words)"
            )));
        }
        Ok(Self {
            spec: de_field(v, "spec")?,
            thread: de_field(v, "thread")?,
            rng: ChaCha8Rng::from_state(rng_key, rng_counter, rng_stream, rng_index),
            instrs: de_field(v, "instrs")?,
            total_instrs: de_field(v, "total_instrs")?,
            pending: de_field(v, "pending")?,
            walk_ptr: de_field(v, "walk_ptr")?,
            hot_start: de_field(v, "hot_start")?,
            color: de_field(v, "color")?,
            next_barrier_id: de_field(v, "next_barrier_id")?,
            last_barrier_at: de_field(v, "last_barrier_at")?,
            done: de_field(v, "done")?,
        })
    }
}

impl Iterator for ThreadGen {
    type Item = Op;

    /// Yields ops up to and including the final [`Op::Done`].
    fn next(&mut self) -> Option<Op> {
        if self.done {
            return None;
        }
        Some(self.next_op())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::Benchmark;

    fn small_spec() -> WorkloadSpec {
        let mut spec = Benchmark::Fft.spec();
        spec.instructions_per_thread = 5_000;
        spec
    }

    #[test]
    fn deterministic_per_seed_and_thread() {
        let spec = small_spec();
        let a: Vec<Op> = ThreadGen::new(&spec, 0, 42).collect();
        let b: Vec<Op> = ThreadGen::new(&spec, 0, 42).collect();
        assert_eq!(a, b);
        let c: Vec<Op> = ThreadGen::new(&spec, 1, 42).collect();
        assert_ne!(a, c);
        let d: Vec<Op> = ThreadGen::new(&spec, 0, 43).collect();
        assert_ne!(a, d);
    }

    #[test]
    fn retires_exactly_the_requested_instructions() {
        let spec = small_spec();
        let mut g = ThreadGen::new(&spec, 0, 1);
        let mut retired = 0u64;
        loop {
            let op = g.next_op();
            if op == Op::Done {
                break;
            }
            if op.is_instruction() {
                retired += 1;
            }
        }
        assert_eq!(retired, spec.instructions_per_thread);
        assert_eq!(g.instructions(), spec.instructions_per_thread);
        // Stream stays Done afterwards.
        assert_eq!(g.next_op(), Op::Done);
    }

    #[test]
    fn barrier_sequences_identical_across_threads() {
        let mut spec = Benchmark::Ocean.spec(); // barrier-heavy
        spec.instructions_per_thread = 20_000;
        let barriers = |t: usize| -> Vec<(u64, u32)> {
            let mut g = ThreadGen::new(&spec, t, 9);
            let mut out = vec![];
            loop {
                match g.next_op() {
                    Op::Done => break,
                    Op::Barrier { id } => out.push((g.instructions(), id)),
                    _ => {}
                }
            }
            out
        };
        let b0 = barriers(0);
        let b5 = barriers(5);
        assert!(!b0.is_empty(), "ocean must emit barriers");
        assert_eq!(b0, b5, "barrier positions/ids must match across threads");
        // ids are sequential
        for (i, (_, id)) in b0.iter().enumerate() {
            assert_eq!(*id as usize, i);
        }
    }

    #[test]
    fn lock_sections_are_balanced() {
        let mut spec = Benchmark::Radiosity.spec(); // lock-heavy
        spec.instructions_per_thread = 20_000;
        let mut depth = 0i64;
        let mut acquires = 0;
        for op in ThreadGen::new(&spec, 2, 7) {
            match op {
                Op::LockAcq { .. } => {
                    depth += 1;
                    acquires += 1;
                    assert_eq!(depth, 1, "no nested critical sections");
                }
                Op::LockRel { .. } => {
                    depth -= 1;
                    assert!(depth >= 0);
                }
                _ => {}
            }
        }
        assert_eq!(depth, 0, "every acquire released");
        assert!(acquires > 0, "radiosity must take locks");
    }

    #[test]
    fn addresses_respect_segments() {
        let spec = small_spec();
        for op in ThreadGen::new(&spec, 3, 11) {
            if let Some(addr) = op.address() {
                if address_space::is_shared(addr) {
                    assert!(addr - address_space::SHARED_BASE < spec.shared_ws_bytes);
                } else {
                    let base = address_space::private_base(3);
                    // Private addresses live in [base + colour, base + colour + ws).
                    assert!(addr >= base && addr - base < spec.private_ws_bytes + 64 * 8320);
                }
            }
        }
    }

    #[test]
    fn serde_roundtrip_replays_identically() {
        // Capture mid-stream (RNG mid-block, pending queue possibly
        // non-empty), restore, and require bit-identical continuation —
        // the contract chip snapshots are built on.
        let spec = small_spec();
        for pause in [0usize, 1, 137, 500, 1234] {
            let mut g = ThreadGen::new(&spec, 2, 5);
            for _ in 0..pause {
                g.next_op();
            }
            let value = g.to_value();
            let mut restored = ThreadGen::from_value(&value).expect("roundtrip");
            let rest_a: Vec<Op> = (0..800).map(|_| g.next_op()).collect();
            let rest_b: Vec<Op> = (0..800).map(|_| restored.next_op()).collect();
            assert_eq!(rest_a, rest_b, "divergence after pause at {pause}");
        }
    }

    #[test]
    fn clone_replays_identically() {
        let spec = small_spec();
        let mut g = ThreadGen::new(&spec, 0, 5);
        for _ in 0..500 {
            g.next_op();
        }
        let mut fork = g.clone();
        let rest_a: Vec<Op> = (0..500).map(|_| g.next_op()).collect();
        let rest_b: Vec<Op> = (0..500).map(|_| fork.next_op()).collect();
        assert_eq!(rest_a, rest_b);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::suite::Benchmark;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn instruction_budget_is_exact(
            seed in 0u64..100,
            thread in 0usize..8,
            n in 100u64..3000,
        ) {
            let mut spec = Benchmark::Barnes.spec();
            spec.instructions_per_thread = n;
            let retired = ThreadGen::new(&spec, thread, seed)
                .filter(Op::is_instruction)
                .count() as u64;
            prop_assert_eq!(retired, n);
        }
    }
}
