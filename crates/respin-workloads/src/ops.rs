//! The trace "ISA" exchanged between workload generators and the simulator.
//!
//! One [`Op`] per dynamic instruction (plus `Idle` pseudo-ops representing
//! dependency-chain stalls and `Done` at end of stream). Addresses are flat
//! 64-bit byte addresses; the simulator's caches index them directly.

use serde::{Deserialize, Serialize};

/// One dynamic operation of a thread's instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Integer ALU instruction.
    Int,
    /// Floating-point instruction.
    Fp,
    /// Memory load from `addr`.
    Load {
        /// Byte address.
        addr: u64,
    },
    /// Memory store to `addr`.
    Store {
        /// Byte address.
        addr: u64,
    },
    /// Conditional branch. `mispredict` is the generator's draw of whether
    /// the core's predictor gets this one wrong (the per-benchmark
    /// misprediction rate folds the predictor model into the trace, as
    /// trace-driven simulators commonly do).
    Branch {
        /// True when the branch costs a misprediction penalty.
        mispredict: bool,
    },
    /// Dependency-chain stall: the thread cannot issue for roughly
    /// `cycles` core cycles. Low-IPC phases are made of these; they are the
    /// consolidation opportunity the paper exploits.
    Idle {
        /// Stall length in core cycles.
        cycles: u16,
    },
    /// Global barrier `id`: the thread blocks until every live thread has
    /// reached the same barrier.
    Barrier {
        /// Barrier sequence number (identical across threads).
        id: u32,
    },
    /// Acquire lock `lock` (spin until free).
    LockAcq {
        /// Lock identifier.
        lock: u32,
    },
    /// Release lock `lock`.
    LockRel {
        /// Lock identifier.
        lock: u32,
    },
    /// End of the thread's stream.
    Done,
}

impl Op {
    /// True for ops that retire as an architectural instruction (everything
    /// except stalls and end-of-stream).
    pub fn is_instruction(&self) -> bool {
        !matches!(self, Op::Idle { .. } | Op::Done)
    }

    /// True for loads and stores.
    pub fn is_memory(&self) -> bool {
        matches!(self, Op::Load { .. } | Op::Store { .. })
    }

    /// The memory address, if this is a load or store.
    pub fn address(&self) -> Option<u64> {
        match self {
            Op::Load { addr } | Op::Store { addr } => Some(*addr),
            _ => None,
        }
    }
}

/// Address-space layout shared by generators and tests.
///
/// Each thread owns a private segment; one program-wide shared segment is
/// common to all threads. Segments are far apart so they can never alias.
pub mod address_space {
    /// Base of the shared data segment.
    pub const SHARED_BASE: u64 = 1 << 46;
    /// Base of thread `t`'s private segment.
    pub fn private_base(thread: usize) -> u64 {
        (1 + thread as u64) << 32
    }
    /// True if `addr` falls in the shared segment.
    pub fn is_shared(addr: u64) -> bool {
        addr >= SHARED_BASE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruction_classification() {
        assert!(Op::Int.is_instruction());
        assert!(Op::Load { addr: 0 }.is_instruction());
        assert!(Op::Barrier { id: 0 }.is_instruction());
        assert!(!Op::Idle { cycles: 3 }.is_instruction());
        assert!(!Op::Done.is_instruction());
    }

    #[test]
    fn memory_classification() {
        assert!(Op::Load { addr: 4 }.is_memory());
        assert!(Op::Store { addr: 4 }.is_memory());
        assert!(!Op::Int.is_memory());
        assert_eq!(Op::Store { addr: 42 }.address(), Some(42));
        assert_eq!(Op::Fp.address(), None);
    }

    #[test]
    fn address_segments_do_not_alias() {
        for t in 0..64 {
            let base = address_space::private_base(t);
            assert!(!address_space::is_shared(base));
            assert!(base < address_space::SHARED_BASE);
            // Private segments are 4 GiB apart; well beyond any working set.
            assert_eq!(address_space::private_base(t + 1) - base, 1 << 32);
        }
        assert!(address_space::is_shared(address_space::SHARED_BASE));
    }
}
