//! Phase schedules: piecewise-constant behaviour over a thread's lifetime.
//!
//! Real parallel programs move through phases — compute-bound kernels,
//! memory-bound sweeps, serial sections, synchronisation storms. The
//! consolidation mechanism of the paper (§III) exists precisely because of
//! low-IPC phases, and Figures 12–14 are dominated by phase structure. A
//! [`PhaseSchedule`] is a cyclic list of [`Phase`]s, advanced by *retired
//! instruction count* so that every thread of a program sees phase
//! boundaries at identical instruction indices (which also keeps barrier
//! counts consistent across threads).

use serde::{Deserialize, Serialize};

/// Behavioural parameters of one execution phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Length of the phase in retired instructions (per thread).
    pub instructions: u64,
    /// Fraction of instructions that are memory operations (loads+stores).
    pub mem_frac: f64,
    /// Of memory operations, the fraction that are stores.
    pub store_frac: f64,
    /// Of memory operations, the fraction that target the shared segment.
    pub shared_frac: f64,
    /// Fraction of instructions that are floating point.
    pub fp_frac: f64,
    /// Fraction of instructions that are branches.
    pub branch_frac: f64,
    /// Misprediction probability per branch.
    pub mispredict_rate: f64,
    /// Probability of inserting an `Idle` stall after an instruction, and
    /// the stall length: models dependency chains / long-latency ops. This
    /// is the low-IPC dial that makes consolidation profitable.
    pub idle_prob: f64,
    /// Mean stall length in core cycles when an `Idle` is inserted.
    pub idle_cycles: u16,
    /// Emit a barrier every this many instructions (0 = no barriers).
    pub barrier_interval: u64,
    /// Probability per instruction of opening a short critical section.
    pub lock_prob: f64,
}

impl Phase {
    /// A neutral compute phase used as a building block and in tests.
    pub fn compute(instructions: u64) -> Self {
        Self {
            instructions,
            mem_frac: 0.25,
            store_frac: 0.30,
            shared_frac: 0.10,
            fp_frac: 0.10,
            branch_frac: 0.15,
            mispredict_rate: 0.05,
            idle_prob: 0.05,
            idle_cycles: 2,
            barrier_interval: 0,
            lock_prob: 0.0,
        }
    }

    /// A low-IPC phase: mostly stalls, little issue — the consolidation
    /// opportunity.
    pub fn low_ipc(instructions: u64) -> Self {
        Self {
            idle_prob: 0.70,
            idle_cycles: 6,
            mem_frac: 0.35,
            ..Self::compute(instructions)
        }
    }

    /// Checks that all probabilities are in range and fractions consistent.
    pub fn validate(&self) -> Result<(), String> {
        let probs = [
            ("mem_frac", self.mem_frac),
            ("store_frac", self.store_frac),
            ("shared_frac", self.shared_frac),
            ("fp_frac", self.fp_frac),
            ("branch_frac", self.branch_frac),
            ("mispredict_rate", self.mispredict_rate),
            ("idle_prob", self.idle_prob),
            ("lock_prob", self.lock_prob),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} = {p} out of [0,1]"));
            }
        }
        if self.mem_frac + self.fp_frac + self.branch_frac > 1.0 {
            return Err("mem+fp+branch fractions exceed 1".into());
        }
        if self.instructions == 0 {
            return Err("phase has zero instructions".into());
        }
        Ok(())
    }
}

/// A cyclic schedule of phases, indexed by retired-instruction count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSchedule {
    phases: Vec<Phase>,
    cycle_len: u64,
}

impl PhaseSchedule {
    /// Builds a schedule; panics on an empty or invalid phase list (the
    /// suite definitions are static, so this is a programming error).
    pub fn new(phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "schedule needs at least one phase");
        for (i, p) in phases.iter().enumerate() {
            if let Err(e) = p.validate() {
                panic!("phase {i} invalid: {e}");
            }
        }
        let cycle_len = phases.iter().map(|p| p.instructions).sum();
        Self { phases, cycle_len }
    }

    /// The phase in effect at retired-instruction index `instr`.
    pub fn phase_at(&self, instr: u64) -> &Phase {
        let mut offset = instr % self.cycle_len;
        for p in &self.phases {
            if offset < p.instructions {
                return p;
            }
            offset -= p.instructions;
        }
        // Unreachable: offset < cycle_len = sum of lengths.
        self.phases.last().expect("non-empty")
    }

    /// Total instructions in one trip through the schedule.
    pub fn cycle_len(&self) -> u64 {
        self.cycle_len
    }

    /// The underlying phases.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_lookup_walks_boundaries() {
        let s = PhaseSchedule::new(vec![Phase::compute(100), Phase::low_ipc(50)]);
        assert_eq!(s.cycle_len(), 150);
        assert_eq!(s.phase_at(0).idle_prob, Phase::compute(1).idle_prob);
        assert_eq!(s.phase_at(99).idle_prob, Phase::compute(1).idle_prob);
        assert_eq!(s.phase_at(100).idle_prob, Phase::low_ipc(1).idle_prob);
        assert_eq!(s.phase_at(149).idle_prob, Phase::low_ipc(1).idle_prob);
        // wraps cyclically
        assert_eq!(s.phase_at(150).idle_prob, Phase::compute(1).idle_prob);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_schedule_panics() {
        PhaseSchedule::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn invalid_phase_panics() {
        let mut p = Phase::compute(10);
        p.mem_frac = 1.5;
        PhaseSchedule::new(vec![p]);
    }

    #[test]
    fn validate_rejects_fraction_overflow() {
        let mut p = Phase::compute(10);
        p.mem_frac = 0.5;
        p.fp_frac = 0.4;
        p.branch_frac = 0.2;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_length() {
        let mut p = Phase::compute(10);
        p.instructions = 0;
        assert!(p.validate().is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn phase_at_total_coverage(
            lens in proptest::collection::vec(1u64..500, 1..6),
            probe in 0u64..10_000,
        ) {
            let phases: Vec<Phase> = lens.iter().map(|&l| Phase::compute(l)).collect();
            let s = PhaseSchedule::new(phases);
            // Never panics, always returns a phase from the list.
            let p = s.phase_at(probe);
            prop_assert!(s.phases().iter().any(|q| q == p));
        }
    }
}
