//! Property tests for the conformance checker (the verification crate's
//! own contract): arbitrary configurations either verify cleanly or
//! produce at least one well-formed violation — never a panic — and every
//! configuration the checker accepts actually constructs a [`Chip`].

#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use respin_power::MemTech;
use respin_sim::{Chip, ChipConfig, CtxSwitchModel, L1Org};
use respin_variation::FrequencyBand;
use respin_verify::{verify_chip_config, CheckContext};
use respin_workloads::Benchmark;

/// Builds a `ChipConfig` from sampled knobs, spanning both the valid
/// envelope and deliberately out-of-range values.
#[allow(clippy::too_many_arguments)]
fn config_from(
    clusters: usize,
    cores_per_cluster: usize,
    core_vdd: f64,
    cache_vdd: f64,
    tech: usize,
    org: usize,
    epoch: u64,
    delivery: u64,
) -> ChipConfig {
    let mut c = ChipConfig::nt_base();
    c.clusters = clusters;
    c.cores_per_cluster = cores_per_cluster;
    c.core_vdd = core_vdd;
    c.cache_vdd = cache_vdd;
    c.cache_tech = if tech == 0 {
        MemTech::Sram
    } else {
        MemTech::SttRam
    };
    c.l1_org = if org == 0 {
        L1Org::Private
    } else {
        L1Org::SharedPerCluster
    };
    c.ctx_switch = if org == 0 {
        CtxSwitchModel::Os
    } else {
        CtxSwitchModel::Hardware
    };
    c.band = match tech + org {
        0 => FrequencyBand::NOMINAL,
        1 => FrequencyBand::NT,
        _ => FrequencyBand::WIDE,
    };
    c.epoch_instructions = epoch;
    c.delivery_ticks = delivery;
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // The checker's totality contract: any configuration — including
    // zero-core geometries, inverted rails, and sub-threshold voltages —
    // yields a report (no panic), the report agrees with `validate`, and
    // every violation carries enough context to act on.
    fn checker_is_total_and_well_formed(
        clusters in 0usize..6,
        cores_per_cluster in 0usize..20,
        core_vdd in 0.0f64..1.5,
        cache_vdd in 0.0f64..1.5,
        tech in 0usize..2,
        org in 0usize..2,
        epoch in 0u64..2_000_000,
        delivery in 0u64..4,
    ) {
        let config = config_from(
            clusters, cores_per_cluster, core_vdd, cache_vdd, tech, org, epoch, delivery,
        );
        let report = config.check();
        prop_assert_eq!(report.is_clean(), config.validate().is_ok());
        for v in &report.violations {
            prop_assert!(!v.code.is_empty(), "violation without a code: {v}");
            prop_assert!(!v.location.is_empty(), "violation without a location: {v}");
            prop_assert!(!v.message.is_empty(), "violation without a message: {v}");
        }
        // The full registry (power tables, curves, FSMs excluded) is just
        // as total over the same inputs.
        let full = verify_chip_config(&CheckContext::new("prop", config));
        prop_assert!(full.violations.len() >= report.violations.len());
    }

    // Acceptance: every configuration the checker passes must construct a
    // Chip without panicking. Small instances keep the 96 cases fast.
    fn verified_configs_construct_chips(
        clusters in 1usize..3,
        cpc_exp in 0u32..3,
        core_vdd in 0.32f64..1.2,
        cache_vdd in 0.4f64..1.2,
        tech in 0usize..2,
        org in 0usize..2,
        seed in 0u64..1000,
    ) {
        let config = config_from(
            clusters,
            1 << cpc_exp,
            core_vdd,
            cache_vdd,
            tech,
            org,
            50_000,
            2,
        );
        let spec = Benchmark::Fft.spec();
        match Chip::try_new(config.clone(), &spec, seed) {
            Ok(_) => prop_assert!(
                config.validate().is_ok(),
                "chip built from a config the checker rejects"
            ),
            Err(report) => {
                prop_assert!(!report.is_clean(), "rejected with a clean report");
                prop_assert!(
                    config.validate().is_err(),
                    "checker passed a config the chip rejects: {report}"
                );
            }
        }
    }
}
