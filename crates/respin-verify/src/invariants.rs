//! The declared invariant registry.
//!
//! Each [`Invariant`] names one property the configuration and technology
//! models must satisfy, with a stable code, a human description, and a
//! check function that appends [`Violation`]s to a [`Report`]. The
//! registry is data, not control flow: front-ends iterate [`registry`] so
//! the set of checked properties is inspectable (`respin-verify --list`).
//!
//! Checks operate on a [`CheckContext`]: the [`ChipConfig`] under test
//! plus derived artefacts (the sampled core-logic frequency curve, the
//! regenerated Table III) that front-ends may substitute with seeded bad
//! inputs to exercise the checker itself.

use respin_power::diag::{Report, Violation};
use respin_power::scaling::{VoltageScaling, CORE_LOGIC_VTH};
use respin_power::table3::{self, Table3Row};
use respin_sim::{CacheSizeClass, ChipConfig};
use respin_variation::quantize_period;

/// Everything an invariant check may inspect.
#[derive(Debug, Clone)]
pub struct CheckContext {
    /// Label of the configuration under check (used in locations).
    pub name: String,
    /// The chip configuration.
    pub config: ChipConfig,
    /// Sampled core-logic frequency curve: `(vdd, fmax_mhz)` points in
    /// ascending `vdd` order. Derived from the scaling laws by default;
    /// front-ends may substitute a seeded curve.
    pub freq_curve: Vec<(f64, f64)>,
    /// Regenerated Table III rows (model + paper values).
    pub table3: Vec<Table3Row>,
    /// Chip-wide core count the configuration promises (e.g. the Table IV
    /// sweeps keep 64 cores). `None` when nothing is promised.
    pub declared_total_cores: Option<usize>,
}

impl CheckContext {
    /// Context for `config` with model-derived curve and tables.
    pub fn new(name: impl Into<String>, config: ChipConfig) -> Self {
        CheckContext {
            name: name.into(),
            freq_curve: sample_freq_curve(),
            table3: table3::generate(),
            declared_total_cores: None,
            config,
        }
    }

    /// Promises a chip-wide core count (enables the CLUSTER-DIVIDE check).
    pub fn with_declared_cores(mut self, total: usize) -> Self {
        self.declared_total_cores = Some(total);
        self
    }

    /// Substitutes the frequency curve (seeded bad inputs).
    pub fn with_freq_curve(mut self, curve: Vec<(f64, f64)>) -> Self {
        self.freq_curve = curve;
        self
    }
}

/// Samples the core-logic `fmax` law above threshold up to the modelled
/// voltage ceiling, at a nominal 2.5 GHz design frequency.
fn sample_freq_curve() -> Vec<(f64, f64)> {
    let s = VoltageScaling::core_logic();
    let mut curve = Vec::new();
    // 50 mV steps from just above Vth to the 1.2 V model ceiling.
    let mut mv = (CORE_LOGIC_VTH * 1000.0) as u64 + 50;
    while mv <= 1200 {
        let vdd = mv as f64 / 1000.0;
        curve.push((vdd, s.fmax_mhz(2500.0, vdd, 0.0)));
        mv += 50;
    }
    curve
}

/// One declared invariant.
pub struct Invariant {
    /// Stable machine-readable code shared by its violations.
    pub code: &'static str,
    /// Short human name.
    pub name: &'static str,
    /// What the property means and why it must hold.
    pub description: &'static str,
    check: fn(&CheckContext, &mut Report),
}

impl Invariant {
    /// Runs this invariant's check, appending violations to `report`.
    pub fn run(&self, ctx: &CheckContext, report: &mut Report) {
        (self.check)(ctx, report);
    }
}

/// The full registry, in check order.
pub fn registry() -> Vec<Invariant> {
    vec![
        Invariant {
            code: "CFG",
            name: "chip configuration structural invariants",
            description: "ChipConfig::check: geometry, voltage ranges, dual-rail \
                          ordering (cache rail >= core rail), thresholds, epoch \
                          and budget positivity",
            check: |ctx, report| report.merge(ctx.config.check()),
        },
        Invariant {
            code: "CLUSTER-DIVIDE",
            name: "cluster size divides the declared core count",
            description: "a sweep that promises a fixed chip-wide core count must \
                          pick cluster sizes that tile it exactly; otherwise the \
                          built chip silently shrinks",
            check: check_cluster_divide,
        },
        Invariant {
            code: "FREQ-MONOTONIC",
            name: "frequency curve is finite and monotonic in Vdd",
            description: "fmax(vdd) from the alpha-power law must be finite, \
                          non-negative, and non-decreasing over the modelled \
                          range — a non-monotonic curve breaks every sweep that \
                          bisects on voltage",
            check: check_freq_monotonic,
        },
        Invariant {
            code: "FREQ-BAND",
            name: "configured band quantises the NT operating point",
            description: "the config's frequency band must admit the period \
                          multiple its own (core_vdd) operating point quantises \
                          to, or every core saturates at a band edge",
            check: check_freq_band,
        },
        Invariant {
            code: "TABLE3-CAL",
            name: "technology models reproduce the paper's Table III",
            description: "area, latency, energy, and leakage of every Table III \
                          row must stay within 5% of the published values",
            check: check_table3_calibration,
        },
        Invariant {
            code: "TABLE3-UNITS",
            name: "Table III rows are physically sane",
            description: "positive finite area/latency/energy/leakage; STT-RAM \
                          writes slower than reads (NVM asymmetry); STT-RAM \
                          leakage below SRAM at equal capacity and voltage",
            check: check_table3_units,
        },
        Invariant {
            code: "SCALE-SANE",
            name: "scaling laws are anchored and monotonic",
            description: "delay factor is 1 at nominal and falls as Vdd rises; \
                          dynamic energy scales as Vdd^2; leakage factor is \
                          linear in Vdd",
            check: check_scaling_sane,
        },
    ]
}

fn check_cluster_divide(ctx: &CheckContext, report: &mut Report) {
    let Some(total) = ctx.declared_total_cores else {
        return;
    };
    let per = ctx.config.cores_per_cluster;
    if per == 0 {
        return; // CFG already reports this
    }
    if total % per != 0 {
        report.push(Violation::error(
            "CLUSTER-DIVIDE",
            "cluster size divides the declared core count",
            format!("{}.cores_per_cluster", ctx.name),
            format!("cluster size {per} does not divide the declared {total} cores"),
        ));
    } else if ctx.config.total_cores() != total {
        report.push(Violation::error(
            "CLUSTER-DIVIDE",
            "cluster size divides the declared core count",
            format!("{}.clusters", ctx.name),
            format!(
                "{} clusters x {per} cores = {}, not the declared {total}",
                ctx.config.clusters,
                ctx.config.total_cores()
            ),
        ));
    }
}

fn check_freq_monotonic(ctx: &CheckContext, report: &mut Report) {
    let curve = &ctx.freq_curve;
    if curve.is_empty() {
        report.push(Violation::error(
            "FREQ-MONOTONIC",
            "frequency curve is finite and monotonic in Vdd",
            format!("{}.freq_curve", ctx.name),
            "frequency curve is empty",
        ));
        return;
    }
    for (i, w) in curve.windows(2).enumerate() {
        if w[1].0 <= w[0].0 {
            report.push(Violation::error(
                "FREQ-MONOTONIC",
                "frequency curve is finite and monotonic in Vdd",
                format!("{}.freq_curve[{}]", ctx.name, i + 1),
                format!(
                    "curve not sampled in ascending Vdd order: {} after {}",
                    w[1].0, w[0].0
                ),
            ));
        }
        if w[1].1 < w[0].1 {
            report.push(Violation::error(
                "FREQ-MONOTONIC",
                "frequency curve is finite and monotonic in Vdd",
                format!("{}.freq_curve[{}]", ctx.name, i + 1),
                format!(
                    "fmax falls from {:.1} to {:.1} MHz as Vdd rises {} -> {} V",
                    w[0].1, w[1].1, w[0].0, w[1].0
                ),
            ));
        }
    }
    for (i, &(vdd, mhz)) in curve.iter().enumerate() {
        if !mhz.is_finite() || mhz < 0.0 {
            report.push(Violation::error(
                "FREQ-MONOTONIC",
                "frequency curve is finite and monotonic in Vdd",
                format!("{}.freq_curve[{i}]", ctx.name),
                format!("fmax at {vdd} V is {mhz} MHz"),
            ));
        } else if vdd > CORE_LOGIC_VTH && mhz == 0.0 {
            report.push(Violation::error(
                "FREQ-MONOTONIC",
                "frequency curve is finite and monotonic in Vdd",
                format!("{}.freq_curve[{i}]", ctx.name),
                format!("fmax is zero at {vdd} V, above the {CORE_LOGIC_VTH} V threshold"),
            ));
        }
    }
}

fn check_freq_band(ctx: &CheckContext, report: &mut Report) {
    let band = ctx.config.band;
    if band.min_mult == 0 || band.min_mult > band.max_mult {
        report.push(Violation::error(
            "FREQ-BAND",
            "configured band quantises the NT operating point",
            format!("{}.band", ctx.name),
            format!(
                "band [{}, {}] is empty or starts at zero",
                band.min_mult, band.max_mult
            ),
        ));
        return;
    }
    // The config's own operating point: nominal-design fmax at core_vdd.
    let s = VoltageScaling::core_logic();
    let fmax = s.fmax_mhz(2500.0, ctx.config.core_vdd, 0.0);
    let mult = quantize_period(fmax, band);
    if mult >= band.max_mult && fmax > 0.0 {
        // Quantisation clamped at the slow edge: every core would run at
        // the band floor regardless of its variation draw.
        let unclamped = quantize_period(fmax, respin_variation::FrequencyBand::WIDE);
        if unclamped > band.max_mult {
            report.push(Violation::warning(
                "FREQ-BAND",
                "configured band quantises the NT operating point",
                format!("{}.band", ctx.name),
                format!(
                    "operating point at {} V wants period multiple {unclamped}, \
                     clamped to the band edge {}",
                    ctx.config.core_vdd, band.max_mult
                ),
            ));
        }
    }
}

fn check_table3_calibration(ctx: &CheckContext, report: &mut Report) {
    for (i, row) in ctx.table3.iter().enumerate() {
        let p = &row.params;
        let q = &row.paper;
        let checks = [
            ("area_mm2", p.area_mm2, q.area_mm2),
            ("read_latency_ps", p.read_latency_ps, q.read_latency_ps),
            ("write_latency_ps", p.write_latency_ps, q.write_latency_ps),
            ("read_energy_pj", p.read_energy_pj, q.read_energy_pj),
            ("leakage_uw", p.leakage_mw * 1000.0, q.leakage_uw),
        ];
        for (metric, got, want) in checks {
            if want <= 0.0 {
                continue;
            }
            let err = (got - want).abs() / want;
            if !err.is_finite() || err >= 0.05 {
                report.push(Violation::error(
                    "TABLE3-CAL",
                    "technology models reproduce the paper's Table III",
                    format!("table3[{i}].{metric}"),
                    format!(
                        "{} at {} V: model {got:.4} vs paper {want:.4} ({:.1}% off)",
                        row.label,
                        row.vdd,
                        err * 100.0
                    ),
                ));
            }
        }
    }
}

fn check_table3_units(ctx: &CheckContext, report: &mut Report) {
    for (i, row) in ctx.table3.iter().enumerate() {
        let p = &row.params;
        let fields = [
            ("area_mm2", p.area_mm2),
            ("read_latency_ps", p.read_latency_ps),
            ("write_latency_ps", p.write_latency_ps),
            ("read_energy_pj", p.read_energy_pj),
            ("write_energy_pj", p.write_energy_pj),
            ("leakage_mw", p.leakage_mw),
        ];
        for (metric, v) in fields {
            if !v.is_finite() || v <= 0.0 {
                report.push(Violation::error(
                    "TABLE3-UNITS",
                    "Table III rows are physically sane",
                    format!("table3[{i}].{metric}"),
                    format!("{} at {} V: {metric} = {v}", row.label, row.vdd),
                ));
            }
        }
        if row.label.contains("STT") && p.write_latency_ps <= p.read_latency_ps {
            report.push(Violation::error(
                "TABLE3-UNITS",
                "Table III rows are physically sane",
                format!("table3[{i}].write_latency_ps"),
                format!(
                    "STT-RAM write ({} ps) not slower than read ({} ps): \
                     the NVM asymmetry the design absorbs is missing",
                    p.write_latency_ps, p.read_latency_ps
                ),
            ));
        }
    }
    // Cross-row: STT-RAM leaks less than SRAM at equal capacity/voltage.
    let sram = ctx
        .table3
        .iter()
        .find(|r| r.label.contains("SRAM (256KB)") && (r.vdd - 1.0).abs() < 1e-9);
    let stt = ctx
        .table3
        .iter()
        .find(|r| r.label.contains("STT") && (r.vdd - 1.0).abs() < 1e-9);
    if let (Some(sram), Some(stt)) = (sram, stt) {
        if stt.params.leakage_mw >= sram.params.leakage_mw {
            report.push(Violation::error(
                "TABLE3-UNITS",
                "Table III rows are physically sane",
                "table3.leakage_mw".to_string(),
                format!(
                    "STT-RAM leakage ({} mW) not below SRAM ({} mW) at 1.0 V / 256 KB: \
                     the paper's NVM leakage advantage is inverted",
                    stt.params.leakage_mw, sram.params.leakage_mw
                ),
            ));
        }
    }
}

fn check_scaling_sane(_ctx: &CheckContext, report: &mut Report) {
    for (label, s) in [
        ("core_logic", VoltageScaling::core_logic()),
        ("sram_array", VoltageScaling::sram_array()),
    ] {
        let loc = |field: &str| format!("VoltageScaling::{label}.{field}");
        if (s.delay_factor(1.0) - 1.0).abs() > 1e-9 {
            report.push(Violation::error(
                "SCALE-SANE",
                "scaling laws are anchored and monotonic",
                loc("delay_factor"),
                format!("delay factor at 1.0 V is {}, not 1", s.delay_factor(1.0)),
            ));
        }
        let mut prev = f64::INFINITY;
        let mut mv = (s.vth * 1000.0) as u64 + 50;
        while mv <= 1200 {
            let v = mv as f64 / 1000.0;
            let d = s.delay_factor(v);
            if d.is_nan() || d >= prev {
                report.push(Violation::error(
                    "SCALE-SANE",
                    "scaling laws are anchored and monotonic",
                    loc("delay_factor"),
                    format!("delay factor not strictly decreasing at {v} V ({d} >= {prev})"),
                ));
                break;
            }
            prev = d;
            mv += 50;
        }
        for v in [0.4, 0.65, 1.0] {
            let e = s.dynamic_energy_factor(v);
            if (e - v * v).abs() > 1e-9 {
                report.push(Violation::error(
                    "SCALE-SANE",
                    "scaling laws are anchored and monotonic",
                    loc("dynamic_energy_factor"),
                    format!(
                        "dynamic energy factor at {v} V is {e}, expected Vdd^2 = {}",
                        v * v
                    ),
                ));
            }
            let l = s.leakage_factor(v);
            if (l - v).abs() > 1e-9 {
                report.push(Violation::error(
                    "SCALE-SANE",
                    "scaling laws are anchored and monotonic",
                    loc("leakage_factor"),
                    format!("leakage factor at {v} V is {l}, expected linear = {v}"),
                ));
            }
        }
    }
}

/// Runs the full registry against one context.
pub fn verify_chip_config(ctx: &CheckContext) -> Report {
    let mut report = Report::new();
    for inv in registry() {
        inv.run(ctx, &mut report);
    }
    report
}

/// Verifies every shipped configuration (the eight Table IV architectures
/// across all cache sizings and the paper's cluster-size sweep) plus the
/// FSM models, merging everything into one report.
pub fn verify_shipped() -> Report {
    let mut report = Report::new();
    for arch in respin_core::ArchConfig::ALL {
        for size in CacheSizeClass::ALL {
            for cluster in [4usize, 8, 16, 32] {
                let name = format!("{}/{}x{}", arch.name(), size.name(), cluster);
                let config = arch.chip_config(size, cluster);
                let ctx = CheckContext::new(name, config).with_declared_cores(64);
                report.merge(verify_chip_config(&ctx));
            }
        }
    }
    report.merge(crate::verify_models());
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use respin_sim::ChipConfig;

    #[test]
    fn shipped_base_config_is_clean() {
        let ctx = CheckContext::new("nt_base", ChipConfig::nt_base());
        let report = verify_chip_config(&ctx);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn inverted_rails_are_flagged() {
        let mut c = ChipConfig::nt_base();
        c.core_vdd = 1.0;
        c.cache_vdd = 0.65;
        let report = verify_chip_config(&CheckContext::new("bad", c));
        assert!(report.violations.iter().any(|v| v.code == "RAIL-ORDER"));
    }

    #[test]
    fn non_monotonic_curve_is_flagged() {
        let curve = vec![(0.4, 500.0), (0.5, 900.0), (0.6, 700.0), (1.0, 2500.0)];
        let ctx = CheckContext::new("bad", ChipConfig::nt_base()).with_freq_curve(curve);
        let report = verify_chip_config(&ctx);
        assert!(
            report.violations.iter().any(|v| v.code == "FREQ-MONOTONIC"),
            "{report}"
        );
    }

    #[test]
    fn indivisible_cluster_size_is_flagged() {
        let mut c = ChipConfig::nt_base();
        c.cores_per_cluster = 12;
        c.clusters = 5; // 60 cores, not the declared 64
        let ctx = CheckContext::new("bad", c).with_declared_cores(64);
        let report = verify_chip_config(&ctx);
        assert!(
            report.violations.iter().any(|v| v.code == "CLUSTER-DIVIDE"),
            "{report}"
        );
    }

    #[test]
    fn registry_codes_are_unique_and_described() {
        let regs = registry();
        for inv in &regs {
            assert!(!inv.code.is_empty());
            assert!(!inv.description.is_empty());
        }
        let mut codes: Vec<&str> = regs.iter().map(|i| i.code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), regs.len(), "duplicate invariant codes");
    }

    #[test]
    fn all_shipped_configurations_verify_clean() {
        let report = verify_shipped();
        assert!(report.is_clean(), "{report}");
    }
}
