//! Abstract model of the shared-L1 read-port arbiter (§II-A, Figure 3).
//!
//! Mirrors the request-register / priority-register machine of
//! `respin_sim::shared_l1::SharedL1` for a single cluster of identical
//! cores, abstracting away addresses and the cache array (every modelled
//! read hits; misses leave the arbitration problem and re-enter it as
//! fills on the write port, which has no deadlines):
//!
//! * each core holds at most one outstanding read (loads are blocking),
//!   issued at a core-cycle boundary and visible to the controller after
//!   the level-shifter delivery delay;
//! * each cache cycle the controller services **one** read, choosing the
//!   pending request whose effective deadline expires soonest, ties rotated
//!   with the tick (`(slot + now) % cores`, exactly the simulator's
//!   tie-break);
//! * a request that slips past a core-cycle boundary is a *half-miss*: its
//!   priority register re-initialises to the next boundary.
//!
//! The environment is maximally adversarial within those rules: at every
//! core-cycle boundary it issues reads from **any** subset of idle cores.
//! The model checker then proves, over every reachable interleaving:
//!
//! 1. **Deadline**: every read completes within `max_core_cycles` core
//!    cycles of issue (2 = at most one half-miss, the paper's service
//!    histogram), and
//! 2. **No starvation**: no request ages past `max_age` ticks unserviced;
//! 3. **No double service**: a request register, once serviced, is cleared
//!    and never serviced again.
//!
//! Two intentionally broken variants are kept as fixtures (the model
//! checker must catch both): [`ArbiterKind::FixedPriority`] ignores the
//! priority registers (lowest core index wins, so a high-index core can be
//! crowded out past the 2-cycle bound), and
//! [`ArbiterKind::NoHalfMissClear`] forgets to clear the request register
//! when servicing a half-missed request, double-servicing it.

use crate::fsm::Model;

/// Which arbitration policy the modelled controller runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbiterKind {
    /// The simulator's policy: earliest effective deadline first, ties
    /// rotated with the tick.
    EarliestDeadline,
    /// Broken fixture: static priority by core index, deadlines ignored.
    FixedPriority,
    /// Broken fixture: half-missed requests are serviced but their request
    /// register is not cleared.
    NoHalfMissClear,
}

/// One core's request-register state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Slot {
    /// No outstanding read.
    Idle,
    /// An outstanding read, `age` ticks after its issue boundary. The
    /// `serviced` flag supports the double-service property (it only ever
    /// becomes true under the [`ArbiterKind::NoHalfMissClear`] fixture).
    Pending {
        /// Ticks since the issue boundary.
        age: u64,
        /// The request has already been serviced once.
        serviced: bool,
    },
}

/// A detected property violation, carried in the state so the BFS trace
/// ends exactly at the offending transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArbiterFailure {
    /// A read completed `cycles` core cycles after issue (> bound).
    Late {
        /// Core whose read was late.
        core: usize,
        /// Completion latency in core cycles.
        cycles: u64,
    },
    /// A request aged past the starvation bound without service.
    Starved {
        /// Core whose request starved.
        core: usize,
    },
    /// A request register was serviced twice.
    DoubleService {
        /// Core whose request was serviced twice.
        core: usize,
    },
}

/// State of the arbiter model.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArbiterState {
    /// Current tick modulo the core period (0 = core-cycle boundary).
    phase: u64,
    /// Current tick modulo the core count (the tie-break rotation).
    rot: u64,
    /// Per-core request registers.
    slots: Vec<Slot>,
    /// First property violation reached, if any.
    failure: Option<ArbiterFailure>,
}

/// The arbiter model: `cores` identical cores of period `mult` ticks
/// sharing one read port.
#[derive(Debug, Clone)]
pub struct ArbiterModel {
    /// Cores in the cluster.
    pub cores: usize,
    /// Core period in cache ticks (all cores identical, boundary-aligned).
    pub mult: u64,
    /// Level-shifter/wire delivery latency in ticks.
    pub delivery: u64,
    /// Read service latency in ticks (1 for the rounded STT-RAM array).
    pub read_ticks: u64,
    /// Arbitration policy.
    pub kind: ArbiterKind,
    /// Deadline property: completions must take at most this many core
    /// cycles (2 = at most one half-miss).
    pub max_core_cycles: u64,
    /// Starvation property: no request may age past this many ticks.
    pub max_age: u64,
}

impl ArbiterModel {
    /// The paper's cluster shape: `cores` cores at period `mult` with the
    /// §II-A two-tick delivery, checked against the ≤ 2 core-cycle service
    /// histogram.
    pub fn paper(cores: usize, mult: u64, kind: ArbiterKind) -> Self {
        ArbiterModel {
            cores,
            mult,
            delivery: 2,
            read_ticks: 1,
            kind,
            max_core_cycles: 2,
            // Generous: three full periods plus the pipe latencies.
            max_age: 3 * mult + 2 + 1,
        }
    }

    /// The simulator's effective-deadline slack: ticks until the next
    /// core-cycle boundary this request can still meet (re-initialised past
    /// each boundary — the half-miss escalation).
    fn slack(&self, age: u64) -> u64 {
        self.mult - (age % self.mult)
    }

    /// Picks the slot to service among arrived requests, mirroring
    /// `SharedL1::tick`'s selection loop.
    fn pick(&self, s: &ArbiterState) -> Option<usize> {
        let mut best: Option<(u64, u64, usize)> = None; // (key, rot, slot)
        for (slot, reg) in s.slots.iter().enumerate() {
            let Slot::Pending { age, .. } = *reg else {
                continue;
            };
            if age < self.delivery {
                continue; // not yet visible to the controller
            }
            let (key, tiebreak) = match self.kind {
                // Broken: deadlines ignored, lowest index always wins.
                ArbiterKind::FixedPriority => (0, slot as u64),
                // Faithful: earliest deadline, ties rotated with the tick.
                _ => (self.slack(age), ((slot as u64) + s.rot) % self.cores as u64),
            };
            if best.is_none_or(|(bk, br, _)| (key, tiebreak) < (bk, br)) {
                best = Some((key, tiebreak, slot));
            }
        }
        best.map(|(_, _, slot)| slot)
    }

    /// Applies service + aging to produce the post-tick state from a
    /// post-issue state.
    fn advance(&self, mut s: ArbiterState) -> ArbiterState {
        if let Some(slot) = self.pick(&s) {
            let Slot::Pending { age, serviced } = s.slots[slot] else {
                unreachable!("picked slot is pending");
            };
            if serviced {
                s.failure = Some(ArbiterFailure::DoubleService { core: slot });
            } else {
                // Data is ready at the end of tick now + read_ticks - 1;
                // the core consumes it at its next cycle boundary.
                let data_age = age + self.read_ticks - 1;
                let cycles = data_age / self.mult + 1;
                if cycles > self.max_core_cycles {
                    s.failure = Some(ArbiterFailure::Late { core: slot, cycles });
                } else if self.kind == ArbiterKind::NoHalfMissClear && cycles >= 2 {
                    // Broken: the half-missed request register is left set.
                    s.slots[slot] = Slot::Pending {
                        age,
                        serviced: true,
                    };
                } else {
                    s.slots[slot] = Slot::Idle;
                }
            }
        }
        if s.failure.is_none() {
            for (core, reg) in s.slots.iter_mut().enumerate() {
                if let Slot::Pending { age, .. } = reg {
                    *age += 1;
                    if *age > self.max_age {
                        s.failure = Some(ArbiterFailure::Starved { core });
                        break;
                    }
                }
            }
        }
        s.phase = (s.phase + 1) % self.mult;
        s.rot = (s.rot + 1) % self.cores as u64;
        s
    }
}

impl Model for ArbiterModel {
    type State = ArbiterState;

    fn name(&self) -> &str {
        match self.kind {
            ArbiterKind::EarliestDeadline => "shared-l1-arbiter",
            ArbiterKind::FixedPriority => "shared-l1-arbiter[broken:fixed-priority]",
            ArbiterKind::NoHalfMissClear => "shared-l1-arbiter[broken:no-halfmiss-clear]",
        }
    }

    fn initial(&self) -> Vec<ArbiterState> {
        vec![ArbiterState {
            phase: 0,
            rot: 0,
            slots: vec![Slot::Idle; self.cores],
            failure: None,
        }]
    }

    fn successors(&self, state: &ArbiterState) -> Vec<ArbiterState> {
        if state.failure.is_some() {
            return Vec::new(); // violations are terminal
        }
        if state.phase != 0 {
            return vec![self.advance(state.clone())];
        }
        // Core-cycle boundary: the environment issues reads from any subset
        // of idle cores (each bit of `mask` = one idle core's choice).
        let idle: Vec<usize> = state
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Slot::Idle)
            .map(|(i, _)| i)
            .collect();
        (0..(1u32 << idle.len()))
            .map(|mask| {
                let mut s = state.clone();
                for (bit, &core) in idle.iter().enumerate() {
                    if mask & (1 << bit) != 0 {
                        s.slots[core] = Slot::Pending {
                            age: 0,
                            serviced: false,
                        };
                    }
                }
                self.advance(s)
            })
            .collect()
    }

    fn check(&self, state: &ArbiterState) -> Result<(), String> {
        match state.failure {
            None => Ok(()),
            Some(ArbiterFailure::Late { core, cycles }) => Err(format!(
                "core {core}'s read completed in {cycles} core cycles \
                 (bound: {} — more than one half-miss)",
                self.max_core_cycles
            )),
            Some(ArbiterFailure::Starved { core }) => Err(format!(
                "core {core}'s request starved past {} ticks without service",
                self.max_age
            )),
            Some(ArbiterFailure::DoubleService { core }) => Err(format!(
                "core {core}'s request register was serviced twice \
                 (half-miss did not clear it)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsm::{explore, Bounds, Outcome};

    #[test]
    fn edf_arbiter_meets_two_cycle_bound_for_paper_cluster() {
        // 4-core cluster at the 4:1 frequency ratio (mult 4): the design
        // point §II-A sizes the mux for. Every interleaving of issues must
        // complete within 2 core cycles.
        let m = ArbiterModel::paper(4, 4, ArbiterKind::EarliestDeadline);
        let e = explore(&m, Bounds::default());
        assert!(e.proved(), "outcome: {:?}", e.outcome);
        // Small but real: ages collapse at boundaries, so the reachable
        // space for the aligned 4x4 instance is a few dozen states.
        assert!(e.states >= 40, "suspiciously small space: {}", e.states);
    }

    #[test]
    fn edf_arbiter_scales_to_slower_cores() {
        // mult 8 (cores at 1/8 the cache clock): more slack, still proved.
        let m = ArbiterModel::paper(4, 8, ArbiterKind::EarliestDeadline);
        let e = explore(&m, Bounds::default());
        assert!(e.proved(), "outcome: {:?}", e.outcome);
    }

    #[test]
    fn fixed_priority_fixture_starves_the_last_core() {
        // Oversubscribed mux (5 cores, period 4): EDF escalation keeps
        // every request within 2 core cycles, but static priority lets the
        // low-priority core slip past the bound. The checker must find it.
        let broken = ArbiterModel::paper(5, 4, ArbiterKind::FixedPriority);
        let e = explore(&broken, Bounds::default());
        let Outcome::Violated(cx) = &e.outcome else {
            panic!("broken arbiter not caught: {:?}", e.outcome);
        };
        assert!(
            cx.reason.contains("core cycles") || cx.reason.contains("starved"),
            "{}",
            cx.reason
        );
        assert!(!cx.trace.is_empty());
    }

    #[test]
    fn edf_handles_the_oversubscribed_cluster_the_fixture_fails() {
        // Same 5-core/period-4 instance as the broken fixture: the real
        // policy still meets the bound, isolating the fixture's bug to the
        // arbitration order.
        let m = ArbiterModel::paper(5, 4, ArbiterKind::EarliestDeadline);
        let e = explore(&m, Bounds::default());
        assert!(e.proved(), "outcome: {:?}", e.outcome);
    }

    #[test]
    fn missing_halfmiss_clear_is_caught_as_double_service() {
        let broken = ArbiterModel::paper(4, 4, ArbiterKind::NoHalfMissClear);
        let e = explore(&broken, Bounds::default());
        let Outcome::Violated(cx) = &e.outcome else {
            panic!("double service not caught: {:?}", e.outcome);
        };
        assert!(cx.reason.contains("serviced twice"), "{}", cx.reason);
    }
}

#[cfg(test)]
mod matrix {
    use super::*;
    use crate::fsm::{explore, Bounds, Outcome};

    #[test]
    #[ignore]
    fn probe() {
        for kind in [ArbiterKind::EarliestDeadline, ArbiterKind::FixedPriority] {
            for n in [4usize, 5, 6, 7, 8] {
                for m in [2u64, 3, 4, 5] {
                    let model = ArbiterModel::paper(n, m, kind);
                    let e = explore(
                        &model,
                        Bounds {
                            max_states: 3_000_000,
                            max_depth: 100_000,
                        },
                    );
                    let verdict = match &e.outcome {
                        Outcome::Proved => "proved".to_string(),
                        Outcome::Violated(cx) => format!("VIOLATED: {}", cx.reason),
                        Outcome::BoundReached { bound } => format!("bound {bound}"),
                    };
                    println!("{kind:?} n={n} m={m}: {verdict} ({} states)", e.states);
                }
            }
        }
    }
}
