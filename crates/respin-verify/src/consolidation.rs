//! Abstract model of the VCM's virtual-core remapping machine (§III-C).
//!
//! Mirrors `Chip::set_active_cores`: a cluster of `cores` physical cores
//! hosts `vcores` virtual cores. Consolidation transitions change the
//! active-core count; the migration algorithm must move every virtual core
//! off powered-down cores (power-off pass) and rebalance onto woken cores
//! (power-on pass). Timing (stall penalties) is abstracted away; what is
//! verified is the *mapping* invariant across every reachable sequence of
//! consolidation decisions and efficiency rankings:
//!
//! 1. every virtual core is assigned to **exactly one** physical core
//!    (never unmapped, never double-mapped),
//! 2. inactive cores host no virtual cores, and
//! 3. the active-core count equals the requested count.
//!
//! The efficiency ranking the real machine derives from process variation
//! is a free input here: the environment nondeterministically picks among
//! representative permutations at every step, so the proof covers any
//! variation draw.
//!
//! The intentionally broken fixture ([`ConsolidationModel::broken`])
//! reproduces a classic power-gating bug: the power-off pass deactivates a
//! core *before* moving its tenants and loses the ones that were in
//! flight, leaving virtual cores mapped to a powered-down core.

use crate::fsm::Model;

/// State: per-physical-core activity and ordered tenant lists (order
/// matters — the real `assigned` is a `Vec` whose order drives migration
/// choices).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MappingState {
    /// Which physical cores are powered on.
    active: Vec<bool>,
    /// Virtual cores hosted by each physical core, in assignment order.
    assigned: Vec<Vec<u8>>,
}

impl MappingState {
    /// Active-core count.
    fn active_count(&self) -> usize {
        self.active.iter().filter(|a| **a).count()
    }
}

/// The consolidation mapping model.
#[derive(Debug, Clone)]
pub struct ConsolidationModel {
    /// Physical cores in the cluster.
    pub cores: usize,
    /// Virtual cores (threads) in the cluster.
    pub vcores: usize,
    /// Efficiency rankings the environment may present (permutations of
    /// core indices, most-efficient first).
    pub rankings: Vec<Vec<usize>>,
    /// When true, the power-off pass drops in-flight tenants (fixture).
    pub broken: bool,
}

impl ConsolidationModel {
    /// Faithful model of a cluster with one thread per physical core,
    /// covering the identity, reversed, and interleaved rankings.
    pub fn cluster(cores: usize) -> Self {
        let identity: Vec<usize> = (0..cores).collect();
        let reversed: Vec<usize> = (0..cores).rev().collect();
        // Odd cores first, then even: a ranking that separates neighbours.
        let interleaved: Vec<usize> = (0..cores)
            .filter(|c| c % 2 == 1)
            .chain((0..cores).filter(|c| c % 2 == 0))
            .collect();
        ConsolidationModel {
            cores,
            vcores: cores,
            rankings: vec![identity, reversed, interleaved],
            broken: false,
        }
    }

    /// The broken-power-off fixture for the same cluster.
    pub fn broken(cores: usize) -> Self {
        ConsolidationModel {
            broken: true,
            ..Self::cluster(cores)
        }
    }

    /// `Chip::pick_host`: the least-loaded target core, ties toward the
    /// more efficient (earlier in `ranking`).
    fn pick_host(state: &MappingState, ranking: &[usize], target: &[bool]) -> usize {
        let mut best: Option<usize> = None;
        for &c in ranking {
            if target[c] {
                match best {
                    None => best = Some(c),
                    Some(b) if state.assigned[c].len() < state.assigned[b].len() => best = Some(c),
                    _ => {}
                }
            }
        }
        best.expect("at least one target core")
    }

    /// `Chip::set_active_cores` on the abstract state.
    fn set_active_cores(
        &self,
        state: &MappingState,
        ranking: &[usize],
        count: usize,
    ) -> MappingState {
        let n = self.cores;
        let count = count.clamp(1, n);
        let mut s = state.clone();
        if count == s.active_count() {
            return s;
        }
        let target = {
            let mut t = vec![false; n];
            for &c in ranking.iter().take(count) {
                t[c] = true;
            }
            t
        };

        // Power-off pass: move orphaned virtual cores to the least-loaded
        // target.
        for c in 0..n {
            if !target[c] && s.active[c] {
                let orphans = std::mem::take(&mut s.assigned[c]);
                s.active[c] = false;
                if self.broken {
                    // Fixture: the core is gated first and the in-flight
                    // tenant list is dropped on the floor.
                    continue;
                }
                for vc in orphans {
                    let host = Self::pick_host(&s, ranking, &target);
                    s.assigned[host].push(vc);
                }
            }
        }

        // Power-on pass: wake targets and steal from the most loaded until
        // balanced.
        for &c in ranking.iter().take(count) {
            if !s.active[c] {
                s.active[c] = true;
                loop {
                    let (max_c, max_load) = {
                        let mut best = (c, s.assigned[c].len());
                        for o in 0..n {
                            if s.active[o] && s.assigned[o].len() > best.1 {
                                best = (o, s.assigned[o].len());
                            }
                        }
                        best
                    };
                    let my_load = s.assigned[c].len();
                    if max_c == c || max_load <= my_load + 1 {
                        break;
                    }
                    let vc = s.assigned[max_c].pop().expect("load > 0");
                    s.assigned[c].push(vc);
                }
            }
        }
        s
    }
}

impl Model for ConsolidationModel {
    type State = MappingState;

    fn name(&self) -> &str {
        if self.broken {
            "vcm-consolidation[broken:gate-before-migrate]"
        } else {
            "vcm-consolidation"
        }
    }

    fn initial(&self) -> Vec<MappingState> {
        // Build state: every core on, one virtual core per physical core
        // (extra vcores round-robin, matching `Cluster::build`).
        let mut assigned = vec![Vec::new(); self.cores];
        for vc in 0..self.vcores {
            assigned[vc % self.cores].push(vc as u8);
        }
        vec![MappingState {
            active: vec![true; self.cores],
            assigned,
        }]
    }

    fn successors(&self, state: &MappingState) -> Vec<MappingState> {
        // The policy may request any count; the variation draw may present
        // any of the representative rankings.
        let mut next = Vec::new();
        for ranking in &self.rankings {
            for count in 1..=self.cores {
                next.push(self.set_active_cores(state, ranking, count));
            }
        }
        next
    }

    fn check(&self, state: &MappingState) -> Result<(), String> {
        let mut seen = vec![0u32; self.vcores];
        for (c, tenants) in state.assigned.iter().enumerate() {
            if !state.active[c] && !tenants.is_empty() {
                return Err(format!(
                    "powered-down core {c} still hosts virtual cores {tenants:?}"
                ));
            }
            for &vc in tenants {
                match seen.get_mut(vc as usize) {
                    Some(n) => *n += 1,
                    None => return Err(format!("unknown virtual core {vc} on core {c}")),
                }
            }
        }
        for (vc, &n) in seen.iter().enumerate() {
            if n == 0 {
                return Err(format!("virtual core {vc} is mapped to no active core"));
            }
            if n > 1 {
                return Err(format!("virtual core {vc} is mapped {n} times"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsm::{explore, Bounds, Outcome};

    #[test]
    fn four_core_cluster_mapping_is_proved() {
        let m = ConsolidationModel::cluster(4);
        let e = explore(&m, Bounds::default());
        assert!(e.proved(), "outcome: {:?}", e.outcome);
        assert!(e.states > 10, "suspiciously small space: {}", e.states);
    }

    #[test]
    fn broken_power_off_pass_is_caught() {
        let m = ConsolidationModel::broken(4);
        let e = explore(&m, Bounds::default());
        let Outcome::Violated(cx) = &e.outcome else {
            panic!("broken power-off pass not caught: {:?}", e.outcome);
        };
        assert!(
            cx.reason.contains("mapped to no active core") || cx.reason.contains("still hosts"),
            "{}",
            cx.reason
        );
        // The witness is a real consolidation sequence from the all-on state.
        assert!(cx.trace.len() >= 2);
    }

    #[test]
    fn single_core_cluster_is_trivially_safe() {
        let m = ConsolidationModel::cluster(1);
        let e = explore(&m, Bounds::default());
        assert!(e.proved(), "outcome: {:?}", e.outcome);
    }
}
