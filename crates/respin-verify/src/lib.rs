//! # respin-verify — static conformance and model checking
//!
//! Verification passes for the Respin simulator, runnable as a binary
//! (`cargo run -p respin-verify`) and callable as a library:
//!
//! * [`invariants`] — a declared registry of static invariants checked
//!   against every [`respin_sim::ChipConfig`], the power tables, and the
//!   scaling laws, producing structured
//!   [`respin_power::diag::Violation`] diagnostics.
//! * [`fsm`] — a bounded breadth-first model checker.
//! * [`arbiter`] — an abstract model of the shared-L1 arbitration machine
//!   (deadline, starvation, and double-service properties).
//! * [`consolidation`] — an abstract model of the VCM remapping machine
//!   (unique-mapping property across power-off/remap transitions).
//! * [`faults`] — abstract models of the fault-recovery machinery: the
//!   write-verify-retry bound and the decommission-aware remapping
//!   machine (no virtual core left on a decommissioned core).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// Tests may unwrap: a panic IS the failure report there.
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod arbiter;
pub mod consolidation;
pub mod faults;
pub mod fsm;
pub mod invariants;

pub use invariants::{registry, verify_chip_config, verify_shipped, CheckContext};

use respin_power::diag::{Report, Violation};

/// Runs the FSM model-checking passes: the shared-L1 arbiter across the NT
/// band's period multiples and the VCM remapping machine, on a 4-core
/// cluster (the smallest instance exhibiting every interleaving class).
/// Proof failures and bound exhaustion both become violations.
pub fn verify_models() -> Report {
    let mut report = Report::new();
    for mult in [4u64, 5, 6] {
        let model = arbiter::ArbiterModel::paper(4, mult, arbiter::ArbiterKind::EarliestDeadline);
        check_model(&model, &mut report);
    }
    let model = consolidation::ConsolidationModel::cluster(4);
    check_model(&model, &mut report);
    for budget in [1u32, 2, 4] {
        let model = faults::RetryModel::new(budget);
        check_model(&model, &mut report);
    }
    let model = faults::DecommissionModel::cluster(3);
    check_model(&model, &mut report);
    report
}

/// Explores `model` and appends a violation when the property does not
/// hold (or could not be proved within bounds).
pub fn check_model<M: fsm::Model>(model: &M, report: &mut Report) {
    let e = fsm::explore(model, fsm::Bounds::default());
    match e.outcome {
        fsm::Outcome::Proved => {}
        fsm::Outcome::Violated(cx) => {
            let tail = cx.trace.last().cloned().unwrap_or_default();
            report.push(Violation::error(
                "FSM",
                "model-checked safety properties hold",
                model.name().to_string(),
                format!(
                    "{} (witness: {} steps, final state {tail})",
                    cx.reason,
                    cx.trace.len()
                ),
            ));
        }
        fsm::Outcome::BoundReached { bound } => {
            report.push(Violation::error(
                "FSM",
                "model-checked safety properties hold",
                model.name().to_string(),
                format!(
                    "exploration hit {bound} after {} states without exhausting \
                     the space: nothing proved",
                    e.states
                ),
            ));
        }
    }
}
