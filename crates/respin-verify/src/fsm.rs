//! Bounded breadth-first model checking.
//!
//! A [`Model`] describes a finite-state machine abstractly: initial states,
//! a successor relation (nondeterminism = multiple successors), and a
//! per-state safety property. [`explore`] walks the reachable state space
//! breadth-first up to configurable bounds and either proves the property
//! over everything reachable within them, or returns a counterexample trace
//! (shortest path from an initial state to the violating state, courtesy of
//! BFS order).
//!
//! The bounds make the pass total even on models that are accidentally
//! unbounded: hitting a bound is reported as [`Outcome::BoundReached`],
//! which verification treats as a failure to *prove* (distinct from a
//! found violation).

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::fmt::Debug;
use std::hash::Hash;

/// An abstract finite-state machine with a safety property.
pub trait Model {
    /// One state of the machine. Must be hashable for the visited set.
    type State: Clone + Eq + Hash + Debug;

    /// Human-readable name, used in diagnostics.
    fn name(&self) -> &str;

    /// The initial state(s).
    fn initial(&self) -> Vec<Self::State>;

    /// All successor states of `state` (every nondeterministic choice).
    fn successors(&self, state: &Self::State) -> Vec<Self::State>;

    /// The safety property: `Err(reason)` when `state` violates it.
    fn check(&self, state: &Self::State) -> Result<(), String>;
}

/// Exploration bounds.
#[derive(Debug, Clone, Copy)]
pub struct Bounds {
    /// Maximum number of distinct states to visit.
    pub max_states: usize,
    /// Maximum BFS depth (transitions from an initial state).
    pub max_depth: usize,
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds {
            max_states: 1_000_000,
            max_depth: 10_000,
        }
    }
}

/// A violating execution: the shortest path from an initial state to the
/// bad state, plus the property's explanation.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Why the final state violates the property.
    pub reason: String,
    /// States along the path, `Debug`-rendered, initial state first.
    pub trace: Vec<String>,
}

/// What the exploration concluded.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Every reachable state (within bounds) satisfies the property, and
    /// the full reachable space was exhausted.
    Proved,
    /// The property was violated; the shortest witness is attached.
    Violated(Counterexample),
    /// A bound was hit before the space was exhausted: nothing proved.
    BoundReached {
        /// Which bound stopped the search.
        bound: &'static str,
    },
}

/// Statistics and verdict of one exploration.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Verdict.
    pub outcome: Outcome,
    /// Distinct states visited.
    pub states: usize,
    /// Deepest BFS layer reached.
    pub depth: usize,
}

impl Exploration {
    /// True when the property was proved over the exhausted space.
    pub fn proved(&self) -> bool {
        matches!(self.outcome, Outcome::Proved)
    }
}

/// Explores `model` breadth-first within `bounds`.
pub fn explore<M: Model>(model: &M, bounds: Bounds) -> Exploration {
    // Visited set maps each state to (id, predecessor id) for trace
    // reconstruction; initial states have no predecessor.
    let mut visited: HashMap<M::State, (usize, Option<usize>)> = HashMap::new();
    let mut by_id: Vec<M::State> = Vec::new();
    let mut queue: VecDeque<(usize, usize)> = VecDeque::new(); // (id, depth)
    let mut max_depth_seen = 0usize;

    let admit = |state: M::State,
                 pred: Option<usize>,
                 visited: &mut HashMap<M::State, (usize, Option<usize>)>,
                 by_id: &mut Vec<M::State>|
     -> Option<usize> {
        match visited.entry(state.clone()) {
            Entry::Occupied(_) => None,
            Entry::Vacant(slot) => {
                let id = by_id.len();
                by_id.push(state);
                slot.insert((id, pred));
                Some(id)
            }
        }
    };

    for s in model.initial() {
        if let Some(id) = admit(s, None, &mut visited, &mut by_id) {
            queue.push_back((id, 0));
        }
    }

    while let Some((id, depth)) = queue.pop_front() {
        max_depth_seen = max_depth_seen.max(depth);
        let state = by_id[id].clone();
        if let Err(reason) = model.check(&state) {
            return Exploration {
                outcome: Outcome::Violated(reconstruct(&by_id, &visited, id, reason)),
                states: by_id.len(),
                depth: max_depth_seen,
            };
        }
        if depth >= bounds.max_depth {
            return Exploration {
                outcome: Outcome::BoundReached { bound: "max_depth" },
                states: by_id.len(),
                depth: max_depth_seen,
            };
        }
        for next in model.successors(&state) {
            if by_id.len() >= bounds.max_states {
                return Exploration {
                    outcome: Outcome::BoundReached {
                        bound: "max_states",
                    },
                    states: by_id.len(),
                    depth: max_depth_seen,
                };
            }
            if let Some(nid) = admit(next, Some(id), &mut visited, &mut by_id) {
                queue.push_back((nid, depth + 1));
            }
        }
    }

    Exploration {
        outcome: Outcome::Proved,
        states: by_id.len(),
        depth: max_depth_seen,
    }
}

fn reconstruct<S: Clone + Eq + Hash + Debug>(
    by_id: &[S],
    visited: &HashMap<S, (usize, Option<usize>)>,
    mut id: usize,
    reason: String,
) -> Counterexample {
    let mut trace = Vec::new();
    loop {
        let state = &by_id[id];
        trace.push(format!("{state:?}"));
        match visited.get(state).and_then(|&(_, pred)| pred) {
            Some(p) => id = p,
            None => break,
        }
    }
    trace.reverse();
    Counterexample { reason, trace }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counter that wraps at `modulus`; property: never reaches `bad`.
    struct Wrap {
        modulus: u32,
        bad: Option<u32>,
    }

    impl Model for Wrap {
        type State = u32;
        fn name(&self) -> &str {
            "wrap"
        }
        fn initial(&self) -> Vec<u32> {
            vec![0]
        }
        fn successors(&self, s: &u32) -> Vec<u32> {
            vec![(s + 1) % self.modulus]
        }
        fn check(&self, s: &u32) -> Result<(), String> {
            match self.bad {
                Some(b) if *s == b => Err(format!("reached forbidden value {b}")),
                _ => Ok(()),
            }
        }
    }

    #[test]
    fn proves_safe_machines() {
        let e = explore(
            &Wrap {
                modulus: 16,
                bad: None,
            },
            Bounds::default(),
        );
        assert!(e.proved());
        assert_eq!(e.states, 16);
    }

    #[test]
    fn finds_shortest_counterexample() {
        let e = explore(
            &Wrap {
                modulus: 16,
                bad: Some(5),
            },
            Bounds::default(),
        );
        match e.outcome {
            Outcome::Violated(cx) => {
                assert_eq!(cx.trace.len(), 6, "{cx:?}"); // 0..=5
                assert_eq!(cx.trace.first().map(String::as_str), Some("0"));
                assert_eq!(cx.trace.last().map(String::as_str), Some("5"));
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn reports_bound_exhaustion() {
        let e = explore(
            &Wrap {
                modulus: 1000,
                bad: None,
            },
            Bounds {
                max_states: 10,
                max_depth: 10_000,
            },
        );
        assert!(matches!(
            e.outcome,
            Outcome::BoundReached {
                bound: "max_states"
            }
        ));
    }
}
