//! Abstract models of the fault-recovery machinery.
//!
//! Two machines are checked:
//!
//! * [`RetryModel`] — the write-verify-retry loop of
//!   `respin_faults::ArrayFaults::on_write`. The property is the retry
//!   *bound*: a write makes at most `1 + budget` attempts before the
//!   controller gives up, no matter how the verify outcomes fall. The
//!   broken fixture keeps retrying past the budget — the classic
//!   "retry until it sticks" bug that turns a worn cell into a livelock
//!   and an unbounded energy sink.
//! * [`DecommissionModel`] — the VCM's graceful-degradation extension of
//!   the consolidation mapping machine. On top of consolidation
//!   transitions, the environment may decommission any healthy core at
//!   any time (the fault threshold tripping). The property extends the
//!   unique-mapping invariant: a decommissioned core is powered off,
//!   hosts nothing, ever, and every virtual core stays mapped to exactly
//!   one active healthy core. The broken fixture gates the faulty core
//!   without migrating its tenants first.

use crate::fsm::Model;

/// State of one write through the verify-retry loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RetryState {
    /// Write attempts issued so far (the initial write counts).
    pub attempts: u32,
    /// The controller stopped (verified or gave up).
    pub done: bool,
}

/// The write-verify-retry machine.
#[derive(Debug, Clone)]
pub struct RetryModel {
    /// Configured retry budget (extra attempts after the initial write).
    pub budget: u32,
    /// When true, the loop ignores the budget (fixture).
    pub broken: bool,
    name: String,
}

impl RetryModel {
    /// Faithful model with the given budget.
    pub fn new(budget: u32) -> Self {
        RetryModel {
            budget,
            broken: false,
            name: format!("write-retry[budget={budget}]"),
        }
    }

    /// Fixture that keeps retrying past the budget.
    pub fn broken(budget: u32) -> Self {
        RetryModel {
            budget,
            broken: true,
            name: format!("write-retry[budget={budget},broken:unbounded]"),
        }
    }

    /// Attempts after which the modelled controller stops retrying.
    fn attempt_limit(&self) -> u32 {
        if self.broken {
            // The bug: the budget comparison is off, so the loop runs
            // well past it before anything else stops it.
            1 + self.budget + 3
        } else {
            1 + self.budget
        }
    }
}

impl Model for RetryModel {
    type State = RetryState;

    fn name(&self) -> &str {
        &self.name
    }

    fn initial(&self) -> Vec<RetryState> {
        vec![RetryState {
            attempts: 1,
            done: false,
        }]
    }

    fn successors(&self, state: &RetryState) -> Vec<RetryState> {
        if state.done {
            return Vec::new();
        }
        // The verify is nondeterministic: the attempt either sticks
        // (done) or fails. A failed attempt retries while the controller
        // believes it has budget left, else it gives up with residual
        // flips (also done).
        let mut next = vec![RetryState {
            attempts: state.attempts,
            done: true,
        }];
        if state.attempts < self.attempt_limit() {
            next.push(RetryState {
                attempts: state.attempts + 1,
                done: false,
            });
        }
        next
    }

    fn check(&self, state: &RetryState) -> Result<(), String> {
        let max = 1 + self.budget;
        if state.attempts > max {
            return Err(format!(
                "write made {} attempts; budget {} allows at most {max}",
                state.attempts, self.budget
            ));
        }
        Ok(())
    }
}

/// State of the degradation-aware mapping machine.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DecomState {
    /// Which physical cores are powered on.
    active: Vec<bool>,
    /// Which physical cores have been decommissioned.
    faulty: Vec<bool>,
    /// Virtual cores hosted by each physical core, in assignment order.
    assigned: Vec<Vec<u8>>,
}

impl DecomState {
    fn healthy_active(&self) -> usize {
        self.active
            .iter()
            .zip(&self.faulty)
            .filter(|(&a, &f)| a && !f)
            .count()
    }
}

/// The consolidation machine extended with core decommissioning.
#[derive(Debug, Clone)]
pub struct DecommissionModel {
    /// Physical cores in the cluster.
    pub cores: usize,
    /// Efficiency rankings the environment may present.
    pub rankings: Vec<Vec<usize>>,
    /// When true, decommissioning drops the core's tenants (fixture).
    pub broken: bool,
}

impl DecommissionModel {
    /// Faithful model with one virtual core per physical core, identity
    /// and reversed rankings.
    pub fn cluster(cores: usize) -> Self {
        DecommissionModel {
            cores,
            rankings: vec![(0..cores).collect(), (0..cores).rev().collect()],
            broken: false,
        }
    }

    /// The gate-before-migrate fixture for the same cluster.
    pub fn broken(cores: usize) -> Self {
        DecommissionModel {
            broken: true,
            ..Self::cluster(cores)
        }
    }

    /// `Chip::pick_host` over active healthy targets.
    fn pick_host(state: &DecomState, ranking: &[usize], target: &[bool]) -> Option<usize> {
        let mut best: Option<usize> = None;
        for &c in ranking {
            if target[c] {
                match best {
                    None => best = Some(c),
                    Some(b) if state.assigned[c].len() < state.assigned[b].len() => best = Some(c),
                    _ => {}
                }
            }
        }
        best
    }

    /// A ranking with decommissioned cores excluded (mirrors
    /// `Cluster::efficiency_ranking`).
    fn healthy_ranking(state: &DecomState, ranking: &[usize]) -> Vec<usize> {
        ranking
            .iter()
            .copied()
            .filter(|&c| !state.faulty[c])
            .collect()
    }

    /// `Chip::set_active_cores` restricted to healthy cores.
    fn set_active_cores(&self, state: &DecomState, ranking: &[usize], count: usize) -> DecomState {
        let n = self.cores;
        let ranking = Self::healthy_ranking(state, ranking);
        let count = count.clamp(1, ranking.len().max(1));
        let mut s = state.clone();
        if count == s.healthy_active() || ranking.is_empty() {
            return s;
        }
        let target = {
            let mut t = vec![false; n];
            for &c in ranking.iter().take(count) {
                t[c] = true;
            }
            t
        };
        for c in 0..n {
            if !target[c] && s.active[c] {
                let orphans = std::mem::take(&mut s.assigned[c]);
                s.active[c] = false;
                for vc in orphans {
                    if let Some(host) = Self::pick_host(&s, &ranking, &target) {
                        s.assigned[host].push(vc);
                    }
                }
            }
        }
        for &c in ranking.iter().take(count) {
            if !s.active[c] {
                s.active[c] = true;
                loop {
                    let (max_c, max_load) = {
                        let mut best = (c, s.assigned[c].len());
                        for o in 0..n {
                            if s.active[o] && s.assigned[o].len() > best.1 {
                                best = (o, s.assigned[o].len());
                            }
                        }
                        best
                    };
                    let my_load = s.assigned[c].len();
                    if max_c == c || max_load <= my_load + 1 {
                        break;
                    }
                    let vc = s.assigned[max_c].pop().expect("load > 0");
                    s.assigned[c].push(vc);
                }
            }
        }
        s
    }

    /// `Chip::decommission_core` on the abstract state. Returns `None`
    /// when the machine refuses (already faulty, or no healthy core left
    /// to take over — the real chip limps rather than halts).
    fn decommission(&self, state: &DecomState, ranking: &[usize], c: usize) -> Option<DecomState> {
        if state.faulty[c] {
            return None;
        }
        let mut s = state.clone();
        if s.active[c] && s.healthy_active() <= 1 {
            let wake = ranking
                .iter()
                .copied()
                .find(|&o| o != c && !s.active[o] && !s.faulty[o])?;
            s.active[wake] = true;
        }
        s.faulty[c] = true;
        s.active[c] = false;
        let orphans = std::mem::take(&mut s.assigned[c]);
        if self.broken {
            // Fixture: the core is gated and marked faulty with its
            // tenants still in flight.
            return Some(s);
        }
        let ranking = Self::healthy_ranking(&s, ranking);
        let target: Vec<bool> = (0..self.cores).map(|o| s.active[o]).collect();
        for vc in orphans {
            let host = Self::pick_host(&s, &ranking, &target)?;
            s.assigned[host].push(vc);
        }
        Some(s)
    }
}

impl Model for DecommissionModel {
    type State = DecomState;

    fn name(&self) -> &str {
        if self.broken {
            "vcm-decommission[broken:gate-without-migrate]"
        } else {
            "vcm-decommission"
        }
    }

    fn initial(&self) -> Vec<DecomState> {
        let assigned: Vec<Vec<u8>> = (0..self.cores).map(|vc| vec![vc as u8]).collect();
        vec![DecomState {
            active: vec![true; self.cores],
            faulty: vec![false; self.cores],
            assigned,
        }]
    }

    fn successors(&self, state: &DecomState) -> Vec<DecomState> {
        let mut next = Vec::new();
        for ranking in &self.rankings {
            // The policy may request any consolidation count…
            for count in 1..=self.cores {
                next.push(self.set_active_cores(state, ranking, count));
            }
            // …and any healthy core's fault counter may trip.
            for c in 0..self.cores {
                if let Some(s) = self.decommission(state, ranking, c) {
                    next.push(s);
                }
            }
        }
        next
    }

    fn check(&self, state: &DecomState) -> Result<(), String> {
        let mut seen = vec![0u32; self.cores];
        for (c, tenants) in state.assigned.iter().enumerate() {
            if state.faulty[c] && state.active[c] {
                return Err(format!("decommissioned core {c} is still powered on"));
            }
            if state.faulty[c] && !tenants.is_empty() {
                return Err(format!(
                    "decommissioned core {c} still hosts virtual cores {tenants:?}"
                ));
            }
            if !state.active[c] && !tenants.is_empty() {
                return Err(format!(
                    "powered-down core {c} still hosts virtual cores {tenants:?}"
                ));
            }
            for &vc in tenants {
                match seen.get_mut(vc as usize) {
                    Some(n) => *n += 1,
                    None => return Err(format!("unknown virtual core {vc} on core {c}")),
                }
            }
        }
        for (vc, &n) in seen.iter().enumerate() {
            if n == 0 {
                return Err(format!("virtual core {vc} is mapped to no active core"));
            }
            if n > 1 {
                return Err(format!("virtual core {vc} is mapped {n} times"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsm::{explore, Bounds, Outcome};

    #[test]
    fn retry_bound_is_proved_for_small_budgets() {
        for budget in [1u32, 2, 4, 7] {
            let m = RetryModel::new(budget);
            let e = explore(&m, Bounds::default());
            assert!(e.proved(), "budget {budget}: {:?}", e.outcome);
            // Space: one live state per attempt count + done states.
            assert!(e.states as u32 >= budget + 2);
        }
    }

    #[test]
    fn unbounded_retry_is_caught_with_witness() {
        let m = RetryModel::broken(2);
        let e = explore(&m, Bounds::default());
        let Outcome::Violated(cx) = &e.outcome else {
            panic!("unbounded retry not caught: {:?}", e.outcome);
        };
        assert!(
            cx.reason.contains("budget 2 allows at most 3"),
            "{}",
            cx.reason
        );
        // Witness: initial attempt plus the three extra failures.
        assert!(cx.trace.len() >= 4, "trace: {:?}", cx.trace);
    }

    #[test]
    fn decommission_mapping_is_proved() {
        let m = DecommissionModel::cluster(3);
        let e = explore(&m, Bounds::default());
        assert!(e.proved(), "outcome: {:?}", e.outcome);
        assert!(e.states > 20, "suspiciously small space: {}", e.states);
    }

    #[test]
    fn gate_without_migrate_is_caught() {
        let m = DecommissionModel::broken(3);
        let e = explore(&m, Bounds::default());
        let Outcome::Violated(cx) = &e.outcome else {
            panic!("broken decommission not caught: {:?}", e.outcome);
        };
        assert!(
            cx.reason.contains("mapped to no active core"),
            "{}",
            cx.reason
        );
        assert!(cx.trace.len() >= 2);
    }

    #[test]
    fn total_loss_limps_instead_of_halting() {
        // Decommission every core: the model must refuse the last one
        // (no healthy replacement), mirroring the chip's limp mode, so
        // the all-faulty state is unreachable.
        let m = DecommissionModel::cluster(2);
        let e = explore(&m, Bounds::default());
        assert!(e.proved(), "outcome: {:?}", e.outcome);
    }
}
