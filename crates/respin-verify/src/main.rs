//! `respin-verify` — static conformance checking and FSM model checking.
//!
//! ```text
//! cargo run -p respin-verify              # verify everything shipped
//! cargo run -p respin-verify -- --list    # print the invariant registry
//! cargo run -p respin-verify -- --json    # machine-readable report
//! cargo run -p respin-verify -- --bad rails|freq|cluster|faults
//!                                         # seeded bad configs (must fail)
//! cargo run -p respin-verify -- --broken arbiter|halfmiss|vcm|retry|decommission
//!                                         # broken FSM fixtures (must fail)
//! ```
//!
//! Exit status is 0 when the report is clean and 1 when any
//! `Error`-severity violation was found (or 2 on usage errors).

use respin_power::diag::Report;
use respin_sim::ChipConfig;
use respin_verify::{
    arbiter::{ArbiterKind, ArbiterModel},
    check_model,
    consolidation::ConsolidationModel,
    faults::{DecommissionModel, RetryModel},
    registry, verify_chip_config, verify_shipped, CheckContext,
};
use std::io::Write;
use std::process::ExitCode;

/// Prints a line, swallowing broken-pipe errors (`respin-verify | head`
/// must exit by its verdict, not a panic).
fn emit(line: std::fmt::Arguments) {
    let _ = writeln!(std::io::stdout(), "{line}");
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: respin-verify [--list] [--json] [--bad rails|freq|cluster|faults] \
         [--broken arbiter|halfmiss|vcm|retry|decommission]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut bad: Option<String> = None;
    let mut broken: Option<String> = None;
    let mut list = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--list" => list = true,
            "--bad" => match it.next() {
                Some(kind) => bad = Some(kind.clone()),
                None => return usage(),
            },
            "--broken" => match it.next() {
                Some(kind) => broken = Some(kind.clone()),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    if list {
        for inv in registry() {
            emit(format_args!("{:<16} {}", inv.code, inv.name));
            emit(format_args!("{:16} {}", "", inv.description));
        }
        return ExitCode::SUCCESS;
    }

    let report = if let Some(kind) = bad {
        match seeded_bad_config(&kind) {
            Some(r) => r,
            None => return usage(),
        }
    } else if let Some(kind) = broken {
        match broken_fixture(&kind) {
            Some(r) => r,
            None => return usage(),
        }
    } else {
        verify_shipped()
    };

    render(&report, json);
    ExitCode::from(u8::try_from(report.exit_code()).unwrap_or(1))
}

/// Seeded invalid configurations the checker must reject — kept runnable
/// so the checker itself stays verifiable end to end.
fn seeded_bad_config(kind: &str) -> Option<Report> {
    let ctx = match kind {
        // Core rail above the cache rail: the dual-rail ordering the
        // paper's design rests on, inverted.
        "rails" => {
            let mut c = ChipConfig::nt_base();
            c.core_vdd = 1.0;
            c.cache_vdd = 0.65;
            CheckContext::new("seeded-bad-rails", c)
        }
        // A frequency curve that dips as Vdd rises.
        "freq" => {
            CheckContext::new("seeded-bad-freq", ChipConfig::nt_base()).with_freq_curve(vec![
                (0.4, 500.0),
                (0.5, 900.0),
                (0.6, 700.0),
                (1.0, 2500.0),
            ])
        }
        // A cluster size that does not tile the declared 64-core chip.
        "cluster" => {
            let mut c = ChipConfig::nt_base();
            c.cores_per_cluster = 12;
            c.clusters = 5;
            CheckContext::new("seeded-bad-cluster", c).with_declared_cores(64)
        }
        // A fault configuration that cannot describe a probability: BER
        // above 1, with a zero retry budget to boot.
        "faults" => {
            let mut c = ChipConfig::nt_base();
            c.faults.write_ber = 1.5;
            c.faults.retry_budget = 0;
            CheckContext::new("seeded-bad-faults", c)
        }
        _ => return None,
    };
    Some(verify_chip_config(&ctx))
}

/// Intentionally broken FSM fixtures the model checker must catch.
fn broken_fixture(kind: &str) -> Option<Report> {
    let mut report = Report::new();
    match kind {
        "arbiter" => {
            // Static-priority arbiter on the instance the real policy
            // proves (5 cores, period 4): the last core slips the bound.
            let model = ArbiterModel::paper(5, 4, ArbiterKind::FixedPriority);
            check_model(&model, &mut report);
        }
        "halfmiss" => {
            let model = ArbiterModel::paper(4, 4, ArbiterKind::NoHalfMissClear);
            check_model(&model, &mut report);
        }
        "vcm" => {
            let model = ConsolidationModel::broken(4);
            check_model(&model, &mut report);
        }
        "retry" => {
            // Write-verify-retry loop that ignores its budget.
            let model = RetryModel::broken(2);
            check_model(&model, &mut report);
        }
        "decommission" => {
            // Decommission pass that gates the core with tenants aboard.
            let model = DecommissionModel::broken(3);
            check_model(&model, &mut report);
        }
        _ => return None,
    }
    Some(report)
}

fn render(report: &Report, json: bool) {
    if json {
        match serde_json::to_string_pretty(report) {
            Ok(s) => emit(format_args!("{s}")),
            Err(e) => eprintln!("failed to serialise report: {e}"),
        }
    } else if report.violations.is_empty() {
        emit(format_args!(
            "respin-verify: all invariants hold (0 violations)"
        ));
    } else {
        emit(format_args!("{report}"));
    }
}
