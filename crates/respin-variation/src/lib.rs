//! # respin-variation — process-variation model
//!
//! A VARIUS-analogue substrate: within-die threshold-voltage (Vth) variation
//! is modelled as a spatially-correlated Gaussian random field sampled at
//! each core's location on the die. Each core's Vth draw determines
//!
//! * its **maximum frequency** at the near-threshold supply (through the
//!   alpha-power delay law from [`respin_power::scaling`]), quantised to an
//!   integer multiple of the 0.4 ns shared-cache reference clock exactly as
//!   the Respin paper's clustered clocking scheme requires (§II), and
//! * its **leakage multiplier** (low-Vth cores leak exponentially more).
//!
//! The spatial correlation uses the spherical variogram VARIUS uses, with a
//! correlation range of half the die width by default.
//!
//! Everything is deterministic in the seed: the same `(VariationConfig,
//! seed)` pair always produces the same [`VariationMap`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// Tests may unwrap: a panic IS the failure report there.
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(clippy::all)]

pub mod field;
pub mod freq;

pub use field::{spherical_correlation, CorrelatedField};
pub use freq::{quantize_period, FrequencyBand};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use respin_power::scaling::VoltageScaling;
use serde::{Deserialize, Serialize};

/// Parameters of the variation model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationConfig {
    /// Number of cores on the die (laid out on a near-square grid).
    pub cores: usize,
    /// Standard deviation of the Vth field, volts. VARIUS-style studies use
    /// σ/µ ≈ 10% of a 0.30 V threshold ⇒ 0.030 V.
    pub sigma_vth: f64,
    /// Correlation range φ as a fraction of die width (VARIUS default 0.5).
    pub correlation_range: f64,
    /// Nominal (1.0 V) design frequency of the cores, MHz.
    pub nominal_mhz: f64,
    /// Exponential sensitivity of leakage to −ΔVth, 1/volts. 12 /V gives a
    /// ±1σ leakage spread of roughly ×/÷1.43, in line with published
    /// within-die leakage spreads.
    pub leakage_sensitivity: f64,
}

impl Default for VariationConfig {
    fn default() -> Self {
        Self {
            cores: 64,
            sigma_vth: 0.030,
            correlation_range: 0.5,
            nominal_mhz: 2500.0,
            leakage_sensitivity: 12.0,
        }
    }
}

/// Per-core variation outcomes for one fabricated chip instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariationMap {
    /// ΔVth per core (volts, signed offset from nominal).
    pub dvth: Vec<f64>,
    /// Maximum core frequency at the queried supply voltage (MHz).
    pub fmax_mhz: Vec<f64>,
    /// Core clock period as an integer multiple of the cache reference
    /// period, after quantisation and band clamping.
    pub period_mult: Vec<u32>,
    /// Leakage multiplier per core (1.0 = nominal).
    pub leakage_factor: Vec<f64>,
    /// The band used for quantisation.
    pub band: FrequencyBand,
}

impl VariationMap {
    /// Generates the variation map for one chip.
    ///
    /// `vdd` is the core supply the frequencies are evaluated at and `band`
    /// the allowed period-multiple range (4..=6 cache cycles for the NT
    /// design point; 1..=1 for the nominal-voltage HP baseline).
    pub fn generate(config: &VariationConfig, vdd: f64, band: FrequencyBand, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let field = CorrelatedField::core_grid(config.cores, config.correlation_range);
        let z = field.sample(&mut rng);
        let scaling = VoltageScaling::core_logic();

        let mut dvth = Vec::with_capacity(config.cores);
        let mut fmax = Vec::with_capacity(config.cores);
        let mut mult = Vec::with_capacity(config.cores);
        let mut leak = Vec::with_capacity(config.cores);
        for zi in z {
            let dv = zi * config.sigma_vth;
            let f = scaling.fmax_mhz(config.nominal_mhz, vdd, dv);
            dvth.push(dv);
            fmax.push(f);
            mult.push(quantize_period(f, band));
            leak.push((-config.leakage_sensitivity * dv).exp());
        }
        Self {
            dvth,
            fmax_mhz: fmax,
            period_mult: mult,
            leakage_factor: leak,
            band,
        }
    }

    /// A map with zero variation (all cores identical) — useful for
    /// controlled experiments and tests.
    pub fn uniform(cores: usize, period_mult: u32, band: FrequencyBand) -> Self {
        Self {
            dvth: vec![0.0; cores],
            fmax_mhz: vec![0.0; cores],
            period_mult: vec![period_mult; cores],
            leakage_factor: vec![1.0; cores],
            band,
        }
    }

    /// Number of cores described.
    pub fn cores(&self) -> usize {
        self.period_mult.len()
    }

    /// Core frequencies in MHz derived from the quantised period multiples
    /// at the given cache reference period.
    pub fn core_mhz(&self, cache_period_ps: f64) -> Vec<f64> {
        self.period_mult
            .iter()
            .map(|&m| 1e6 / (m as f64 * cache_period_ps))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let cfg = VariationConfig::default();
        let a = VariationMap::generate(&cfg, 0.4, FrequencyBand::NT, 7);
        let b = VariationMap::generate(&cfg, 0.4, FrequencyBand::NT, 7);
        assert_eq!(a, b);
        let c = VariationMap::generate(&cfg, 0.4, FrequencyBand::NT, 8);
        assert_ne!(a.dvth, c.dvth);
    }

    #[test]
    fn nt_band_spans_paper_multiples() {
        // Across several chips every period multiple must be 4, 5, or 6
        // (1.6/2.0/2.4 ns at the 0.4 ns cache clock) and the population
        // should use more than one bin.
        let cfg = VariationConfig::default();
        // BTreeSet so the failure message renders the bins in order
        // (and the D001 audit finds no unordered collections at all).
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..8 {
            let m = VariationMap::generate(&cfg, 0.4, FrequencyBand::NT, seed);
            for &p in &m.period_mult {
                assert!((4..=6).contains(&p), "period mult {p}");
                seen.insert(p);
            }
        }
        assert!(seen.len() >= 2, "variation collapsed to one bin: {seen:?}");
    }

    #[test]
    fn leakage_factor_anticorrelates_with_frequency() {
        let cfg = VariationConfig::default();
        let m = VariationMap::generate(&cfg, 0.4, FrequencyBand::NT, 3);
        // Fast cores (low Vth) leak more: check the extremes.
        let (imax, _) = m
            .fmax_mhz
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        let (imin, _) = m
            .fmax_mhz
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        assert!(m.leakage_factor[imax] > m.leakage_factor[imin]);
    }

    #[test]
    fn uniform_map_is_flat() {
        let m = VariationMap::uniform(16, 5, FrequencyBand::NT);
        assert_eq!(m.cores(), 16);
        assert!(m.period_mult.iter().all(|&p| p == 5));
        assert!(m.leakage_factor.iter().all(|&f| f == 1.0));
    }

    #[test]
    fn core_mhz_matches_multiples() {
        let m = VariationMap::uniform(4, 4, FrequencyBand::NT);
        let mhz = m.core_mhz(400.0);
        assert!((mhz[0] - 625.0).abs() < 1e-9);
    }

    #[test]
    fn hp_band_pins_nominal_frequency() {
        let cfg = VariationConfig::default();
        let m = VariationMap::generate(&cfg, 1.0, FrequencyBand::NOMINAL, 1);
        assert!(m.period_mult.iter().all(|&p| p == 1));
    }
}
