//! Spatially-correlated Gaussian random fields.
//!
//! VARIUS models within-die parameter variation as a stationary, isotropic
//! Gaussian process with a *spherical* correlation structure: nearby devices
//! are strongly correlated, devices more than the correlation range φ apart
//! are independent. We sample the process at core-granularity (one point per
//! core centre on a near-square grid) by Cholesky-factoring the correlation
//! matrix — exact, and cheap at ≤ 1024 cores.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Spherical correlation function with range `phi` (same length units as
/// `distance`). Standard VARIUS/geostatistics form:
/// `ρ(d) = 1 − 1.5·(d/φ) + 0.5·(d/φ)³` for `d < φ`, else 0.
pub fn spherical_correlation(distance: f64, phi: f64) -> f64 {
    if phi <= 0.0 {
        return if distance == 0.0 { 1.0 } else { 0.0 };
    }
    let r = distance / phi;
    if r >= 1.0 {
        0.0
    } else {
        1.0 - 1.5 * r + 0.5 * r * r * r
    }
}

/// A correlated standard-normal field over a fixed set of sample points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorrelatedField {
    /// Sample-point coordinates in die-width units (die spans \[0, 1\]).
    points: Vec<(f64, f64)>,
    /// Lower-triangular Cholesky factor of the correlation matrix, stored
    /// row-major, row `i` holding `i + 1` entries.
    chol: Vec<Vec<f64>>,
}

impl CorrelatedField {
    /// Builds the field for `n` points at the given coordinates with
    /// correlation range `phi` (in die-width units).
    pub fn new(points: Vec<(f64, f64)>, phi: f64) -> Self {
        let n = points.len();
        // Correlation matrix with a small diagonal jitter so the Cholesky
        // factorisation stays positive definite despite rounding.
        let mut cov = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..=i {
                let (xi, yi) = points[i];
                let (xj, yj) = points[j];
                let d = ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt();
                let c = spherical_correlation(d, phi);
                cov[i][j] = c;
                cov[j][i] = c;
            }
            cov[i][i] += 1e-9;
        }
        let chol = cholesky_lower(&cov);
        Self { points, chol }
    }

    /// Field over the centres of an `n`-core near-square grid covering the
    /// unit die, with range `phi` expressed as a fraction of die width.
    pub fn core_grid(n: usize, phi: f64) -> Self {
        Self::new(grid_points(n), phi)
    }

    /// Number of sample points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the field has no sample points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Coordinates of the sample points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Draws one realisation: a vector of correlated standard normals.
    pub fn sample(&self, rng: &mut ChaCha8Rng) -> Vec<f64> {
        let iid: Vec<f64> = (0..self.len()).map(|_| standard_normal(rng)).collect();
        self.chol
            .iter()
            .map(|row| row.iter().zip(&iid).map(|(l, z)| l * z).sum())
            .collect()
    }
}

/// Core-centre coordinates for an `n`-core near-square grid on the unit die.
pub fn grid_points(n: usize) -> Vec<(f64, f64)> {
    let cols = (n as f64).sqrt().ceil() as usize;
    let rows = n.div_ceil(cols);
    (0..n)
        .map(|i| {
            let r = i / cols;
            let c = i % cols;
            (
                (c as f64 + 0.5) / cols as f64,
                (r as f64 + 0.5) / rows as f64,
            )
        })
        .collect()
}

/// Lower-triangular Cholesky factor of a symmetric positive-definite matrix.
fn cholesky_lower(a: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = a.len();
    let mut l: Vec<Vec<f64>> = (0..n).map(|i| vec![0.0; i + 1]).collect();
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i][j];
            #[allow(clippy::needless_range_loop)] // indexes two rows at once
            for k in 0..j {
                sum -= l[i][k] * l[j][k];
            }
            if i == j {
                assert!(sum > 0.0, "matrix not positive definite at row {i}");
                l[i][j] = sum.sqrt();
            } else {
                l[i][j] = sum / l[j][j];
            }
        }
    }
    l
}

/// Box–Muller standard normal draw (kept local to avoid a rand_distr
/// dependency).
fn standard_normal(rng: &mut ChaCha8Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            let u2: f64 = rng.gen::<f64>();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn spherical_endpoints() {
        assert_eq!(spherical_correlation(0.0, 0.5), 1.0);
        assert_eq!(spherical_correlation(0.5, 0.5), 0.0);
        assert_eq!(spherical_correlation(0.9, 0.5), 0.0);
        let mid = spherical_correlation(0.25, 0.5);
        assert!(mid > 0.0 && mid < 1.0);
    }

    #[test]
    fn spherical_monotone_decreasing() {
        let mut prev = 1.0;
        let mut d = 0.0;
        while d <= 0.5 {
            let c = spherical_correlation(d, 0.5);
            assert!(c <= prev + 1e-12);
            prev = c;
            d += 0.01;
        }
    }

    #[test]
    fn grid_points_cover_unit_die() {
        for n in [4, 16, 64, 63] {
            let pts = grid_points(n);
            assert_eq!(pts.len(), n);
            for (x, y) in pts {
                assert!((0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&y));
            }
        }
    }

    #[test]
    fn cholesky_reconstructs_identity() {
        let eye = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let l = cholesky_lower(&eye);
        assert!((l[0][0] - 1.0).abs() < 1e-12);
        assert!((l[1][1] - 1.0).abs() < 1e-12);
        assert!(l[1][0].abs() < 1e-12);
    }

    #[test]
    fn neighbours_more_correlated_than_distant_points() {
        // Empirical check over many draws: adjacent cores on the grid must
        // correlate far more strongly than opposite corners.
        let field = CorrelatedField::core_grid(64, 0.5);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let (mut c_near, mut c_far, mut v0) = (0.0, 0.0, 0.0);
        let draws = 600;
        for _ in 0..draws {
            let z = field.sample(&mut rng);
            c_near += z[0] * z[1]; // adjacent in row 0
            c_far += z[0] * z[63]; // opposite corners
            v0 += z[0] * z[0];
        }
        let near = c_near / v0;
        let far = c_far / v0;
        assert!(near > 0.5, "near correlation {near}");
        assert!(far < near - 0.3, "far {far} vs near {near}");
    }

    #[test]
    fn samples_are_standard_normal_ish() {
        let field = CorrelatedField::core_grid(16, 0.5);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        let draws = 2000;
        for _ in 0..draws {
            for z in field.sample(&mut rng) {
                sum += z;
                sumsq += z * z;
            }
        }
        let n = (draws * 16) as f64;
        let mean = sum / n;
        let var = sumsq / n - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    proptest! {
        #[test]
        fn correlation_in_unit_interval(d in 0.0f64..2.0, phi in 0.01f64..1.0) {
            let c = spherical_correlation(d, phi);
            prop_assert!((0.0..=1.0).contains(&c));
        }

        #[test]
        fn sample_length_matches_cores(n in 1usize..80, seed in 0u64..1000) {
            let field = CorrelatedField::core_grid(n, 0.5);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let z = field.sample(&mut rng);
            prop_assert_eq!(z.len(), n);
            prop_assert!(z.iter().all(|v| v.is_finite()));
        }
    }
}
