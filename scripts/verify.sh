#!/usr/bin/env sh
# The full local gate: everything CI runs, in one command.
set -eu

cd "$(dirname "$0")/.."

echo '== cargo fmt --check'
cargo fmt --check

echo '== cargo clippy --all-targets -- -D warnings'
cargo clippy --all-targets -- -D warnings

echo '== cargo build --release'
cargo build --release

echo '== cargo test -q'
cargo test -q

echo '== respin-verify: shipped configurations and FSM proofs'
cargo run --release -p respin-verify

echo '== respin-verify: seeded bad configs must fail'
for kind in rails freq cluster; do
    if cargo run --release -q -p respin-verify -- --bad "$kind" >/dev/null; then
        echo "seeded bad config '$kind' was not rejected" >&2
        exit 1
    fi
done

echo '== respin-verify: broken FSM fixtures must fail'
for kind in arbiter halfmiss vcm; do
    if cargo run --release -q -p respin-verify -- --broken "$kind" >/dev/null; then
        echo "broken fixture '$kind' was not caught" >&2
        exit 1
    fi
done

echo 'verify: all gates green'
