#!/usr/bin/env sh
# The full local gate: everything CI runs, in one command.
set -eu

cd "$(dirname "$0")/.."

echo '== vendored dependencies present (offline build preflight)'
for dep in rand rand_chacha serde serde_derive serde_json proptest criterion parking_lot; do
    if [ ! -f "vendor/$dep/Cargo.toml" ]; then
        echo "vendored dependency '$dep' is missing (vendor/$dep/Cargo.toml not found)." >&2
        echo "This workspace builds offline against hand-written stubs in vendor/;" >&2
        echo "restore the vendor/ tree before running any cargo command." >&2
        exit 1
    fi
done

echo '== cargo fmt --check'
cargo fmt --check

echo '== cargo clippy --all-targets -- -D warnings'
cargo clippy --all-targets -- -D warnings

echo '== cargo build --release'
cargo build --release

echo '== cargo test -q'
cargo test -q

echo '== respin-lint: workspace must be determinism-lint clean (--json artifact)'
lint_dir=$(mktemp -d)
cargo run --release -q -p respin-lint -- --json >"$lint_dir/lint.json"
if ! grep -q '"schema": "respin-lint-report/v1"' "$lint_dir/lint.json"; then
    echo "respin-lint: JSON report schema is not respin-lint-report/v1" >&2
    exit 1
fi

echo '== respin-lint: bad fixtures must fail with their rule id, good ones must pass'
for rule in D001 D002 D003 D004 D005 D006; do
    low=$(echo "$rule" | tr 'A-Z' 'a-z')
    libflag=''
    if [ "$rule" = D005 ]; then
        libflag='--lib'
    fi
    if out=$(cargo run --release -q -p respin-lint -- \
        --file "crates/respin-lint/fixtures/${low}_bad.rs" --crate respin-sim $libflag); then
        echo "respin-lint: bad fixture ${low}_bad.rs was not rejected" >&2
        exit 1
    fi
    case "$out" in
        *"$rule"*) ;;
        *)
            echo "respin-lint: ${low}_bad.rs rejected without citing $rule" >&2
            exit 1 ;;
    esac
    if ! cargo run --release -q -p respin-lint -- \
        --file "crates/respin-lint/fixtures/${low}_good.rs" --crate respin-sim $libflag >/dev/null; then
        echo "respin-lint: good fixture ${low}_good.rs did not pass" >&2
        exit 1
    fi
done
rm -rf "$lint_dir"

echo '== respin-verify: shipped configurations and FSM proofs'
cargo run --release -p respin-verify

echo '== respin-verify: seeded bad configs must fail'
for kind in rails freq cluster faults; do
    if cargo run --release -q -p respin-verify -- --bad "$kind" >/dev/null; then
        echo "seeded bad config '$kind' was not rejected" >&2
        exit 1
    fi
done

echo '== respin-verify: broken FSM fixtures must fail'
for kind in arbiter halfmiss vcm retry decommission; do
    if cargo run --release -q -p respin-verify -- --broken "$kind" >/dev/null; then
        echo "broken fixture '$kind' was not caught" >&2
        exit 1
    fi
done

echo '== fault-injection + trace smoke: faults fire, nothing escapes, trace exports are real'
echo '   (run at 2 workers and 1 worker; artifacts must be byte-identical)'
trace_dir=$(mktemp -d)
seq_dir=$(mktemp -d)
out=$(RESPIN_THREADS=2 cargo run --release -q -p respin-serve --bin respin-experiments -- \
    resilience --quick --out "$trace_dir" --trace-out "$trace_dir/trace")
smoke=$(printf '%s\n' "$out" | grep '^smoke: ')
echo "$smoke"
case "$smoke" in
    *"injected=0 "*)
        echo "fault-injection smoke: no faults were injected" >&2
        exit 1 ;;
esac
case "$smoke" in
    *"escapes=0 "*) ;;
    *)
        echo "fault-injection smoke: silent escapes with ECC enabled" >&2
        exit 1 ;;
esac
case "$smoke" in
    *"threads=2"*) ;;
    *)
        echo "fault-injection smoke: resolved worker count missing from status line" >&2
        exit 1 ;;
esac
printf '%s\n' "$out" | grep '^trace: '
if [ ! -s "$trace_dir/trace.jsonl" ]; then
    echo "trace smoke: JSONL export is empty or missing" >&2
    exit 1
fi
if ! grep -q '"CacheEpoch"' "$trace_dir/trace.jsonl"; then
    echo "trace smoke: no CacheEpoch record in the JSONL export" >&2
    exit 1
fi
if ! grep -q '"Consolidation"' "$trace_dir/trace.jsonl"; then
    echo "trace smoke: no Consolidation event in the JSONL export" >&2
    exit 1
fi
if [ ! -s "$trace_dir/trace.chrome.json" ]; then
    echo "trace smoke: Chrome-trace export is empty or missing" >&2
    exit 1
fi
RESPIN_THREADS=1 RESPIN_CLUSTER_WORKERS=1 cargo run --release -q -p respin-serve --bin respin-experiments -- \
    resilience --quick --out "$seq_dir" --trace-out "$seq_dir/trace" >/dev/null
for f in resilience.txt resilience.json trace.jsonl trace.chrome.json; do
    if ! cmp -s "$trace_dir/$f" "$seq_dir/$f"; then
        echo "determinism smoke: $f differs between RESPIN_THREADS=2 and =1" >&2
        exit 1
    fi
done
echo 'determinism smoke: artifacts byte-identical at 2 workers and 1 worker'
# Third leg: intra-run cluster sharding (DESIGN.md §16) must also be
# byte-identical to the sequential stepping loop.
cs_dir=$(mktemp -d)
RESPIN_THREADS=1 RESPIN_CLUSTER_WORKERS=2 cargo run --release -q -p respin-serve --bin respin-experiments -- \
    resilience --quick --out "$cs_dir" --trace-out "$cs_dir/trace" >/dev/null
for f in resilience.txt resilience.json trace.jsonl trace.chrome.json; do
    if ! cmp -s "$cs_dir/$f" "$seq_dir/$f"; then
        echo "determinism smoke: $f differs between RESPIN_CLUSTER_WORKERS=2 and sequential" >&2
        exit 1
    fi
done
echo 'determinism smoke: artifacts byte-identical with cluster sharding at 2 workers'
rm -rf "$trace_dir" "$seq_dir" "$cs_dir"

echo '== kill-and-resume smoke: SIGKILL mid-campaign, resume, byte-identical report'
kr_dir=$(mktemp -d)
exp_bin=target/release/respin-experiments
RESPIN_THREADS=1 "$exp_bin" fig12 --quick --out "$kr_dir/base" >/dev/null
# Same campaign, journaled; SIGKILL it as soon as the first run lands.
# The binary is invoked directly (not via `cargo run`) so the kill hits
# the simulating process itself, not a wrapper that would orphan it.
RESPIN_THREADS=1 "$exp_bin" fig12 --quick --out "$kr_dir/int" \
    --checkpoint-dir "$kr_dir/ckpt" >/dev/null 2>&1 &
kr_pid=$!
i=0
while [ ! -s "$kr_dir/ckpt/journal.jsonl" ] && [ "$i" -lt 600 ]; do
    sleep 0.1
    i=$((i + 1))
done
kill -9 "$kr_pid" 2>/dev/null || true
wait "$kr_pid" 2>/dev/null || true
if [ ! -s "$kr_dir/ckpt/journal.jsonl" ]; then
    echo "kill-and-resume smoke: no journal record landed before the kill" >&2
    exit 1
fi
kr_records=$(wc -l <"$kr_dir/ckpt/journal.jsonl")
kr_out=$(RESPIN_THREADS=1 "$exp_bin" fig12 --quick --out "$kr_dir/res" \
    --checkpoint-dir "$kr_dir/ckpt" --resume)
printf '%s\n' "$kr_out" | grep '^resume: '
for f in fig12.txt fig12.json; do
    if ! cmp -s "$kr_dir/base/$f" "$kr_dir/res/$f"; then
        echo "kill-and-resume smoke: $f differs from the uninterrupted baseline" >&2
        exit 1
    fi
done
echo "kill-and-resume smoke: report byte-identical after SIGKILL at $kr_records journaled run(s)"
rm -rf "$kr_dir"

echo '== bench_report smoke: perf-trajectory harness runs and its schema holds'
bench_dir=$(mktemp -d)
cargo run --release -q -p respin-bench --bin bench_report -- \
    --smoke --out "$bench_dir/bench.json" | tee "$bench_dir/bench.log"
for suite in fig6_quick resilience_smoke consolidation_heavy idle_heavy idle_heavy_reference; do
    if ! grep -q "\"$suite\"" "$bench_dir/bench.json"; then
        echo "bench smoke: suite '$suite' missing from report" >&2
        exit 1
    fi
done
for key in schema wall_ms instructions ips ticks_skipped parallel threads host_cpus unique_runs speedup cluster_shard workers clusters wall_ms_w1 wall_ms_wn gated delta_vs_prev serve clients runs_per_client wall_ms_cold wall_ms_warm_memo wall_ms_warm_store warm_hit_ms warm_hits; do
    if ! grep -q "\"$key\"" "$bench_dir/bench.json"; then
        echo "bench smoke: key '$key' missing from report" >&2
        exit 1
    fi
done
if ! grep -q '"schema": "respin-bench-report/v5"' "$bench_dir/bench.json"; then
    echo "bench smoke: report schema is not respin-bench-report/v5" >&2
    exit 1
fi
if grep -q '^bench: idle_heavy .*ticks_skipped=0$' "$bench_dir/bench.log"; then
    echo "bench smoke: fast path skipped no ticks on the idle-heavy suite" >&2
    exit 1
fi
if ! grep -q '^bench: sweep_parallel ' "$bench_dir/bench.log"; then
    echo "bench smoke: run-pool sweep status line missing" >&2
    exit 1
fi
if ! grep -q '^bench: cluster_shard ' "$bench_dir/bench.log"; then
    echo "bench smoke: cluster-shard status line missing" >&2
    exit 1
fi
rm -rf "$bench_dir"

echo '== profile smoke: bench --profile attributes executed-tick wall time (respin-profile/v1)'
prof_dir=$(mktemp -d)
"$exp_bin" bench --profile --smoke --out "$prof_dir/profile.json"
if ! grep -q '"schema":"respin-profile/v1"' "$prof_dir/profile.json"; then
    echo "profile smoke: report schema is not respin-profile/v1" >&2
    exit 1
fi
for phase in shared_l1_tick event_drain core_execute sync_replay epoch_maintenance; do
    if ! grep -q "\"$phase\"" "$prof_dir/profile.json"; then
        echo "profile smoke: phase '$phase' missing from report" >&2
        exit 1
    fi
done
coverage=$(sed -n 's/.*"coverage_pct":\([0-9]*\)\..*/\1/p' "$prof_dir/profile.json")
if [ -z "$coverage" ] || [ "$coverage" -lt 95 ]; then
    echo "profile smoke: coverage_pct '$coverage' is below the 95% attribution floor" >&2
    exit 1
fi
echo "profile smoke: coverage ${coverage}% of wall time attributed across the five phases"
rm -rf "$prof_dir"

echo '== fig6_quick ips floor (self-gating: applies only when the host matches the committed baseline)'
# Same honesty convention as the PR5 speedup floors: a wall-clock gate
# is only meaningful on a host shaped like the one the baseline was
# recorded on. The floor is baseline/4 — a gross-regression tripwire
# that tolerates contention on a shared host, not a precision gate.
floor_baseline=BENCH_PR10.json
if [ -f "$floor_baseline" ]; then
    base_cpus=$(sed -n 's/.*"parallel": { "threads": [0-9]*, "host_cpus": \([0-9]*\),.*/\1/p' "$floor_baseline")
    cur_cpus=$( (nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null) | head -n 1)
    if [ -n "$base_cpus" ] && [ "$cur_cpus" = "$base_cpus" ]; then
        fig6_line=$(./target/release/bench_report --fig6-only)
        echo "$fig6_line"
        fig6_ips=$(printf '%s\n' "$fig6_line" | sed -n 's/.*ips=\([0-9]*\).*/\1/p')
        base_ips=$(sed -n 's/.*"fig6_quick": { "wall_ms": [0-9.]*, "instructions": [0-9]*, "ips": \([0-9]*\),.*/\1/p' "$floor_baseline")
        floor=$((base_ips / 4))
        if [ -z "$fig6_ips" ] || [ "$fig6_ips" -lt "$floor" ]; then
            echo "fig6 floor: ips ${fig6_ips:-?} is below floor $floor (baseline $base_ips / 4)" >&2
            exit 1
        fi
        echo "fig6 floor: ips $fig6_ips >= floor $floor (baseline $base_ips / 4)"
    else
        echo "fig6 floor: skipped (host_cpus=$cur_cpus, baseline host_cpus=${base_cpus:-?})"
    fi
else
    echo "fig6 floor: skipped (no $floor_baseline committed)"
fi

echo '== serve smoke: daemon artifacts byte-identical to one-shot; store survives SIGKILL'
sv_dir=$(mktemp -d)
RESPIN_THREADS=1 "$exp_bin" fig12 --quick --out "$sv_dir/oneshot" >/dev/null
"$exp_bin" serve --socket "$sv_dir/sock" --store "$sv_dir/store" --quiet \
    >"$sv_dir/serve1.log" 2>&1 &
sv_pid=$!
i=0
while ! grep -q '^serve: listening ' "$sv_dir/serve1.log" 2>/dev/null && [ "$i" -lt 200 ]; do
    sleep 0.1
    i=$((i + 1))
done
if ! grep -q '^serve: listening ' "$sv_dir/serve1.log"; then
    echo "serve smoke: daemon did not come up" >&2
    exit 1
fi
sv_out=$("$exp_bin" client --socket "$sv_dir/sock" fig12 --quick --out "$sv_dir/cold")
printf '%s\n' "$sv_out" | grep '^serve: name=fig12 '
for f in fig12.txt fig12.json; do
    if ! cmp -s "$sv_dir/oneshot/$f" "$sv_dir/cold/$f"; then
        echo "serve smoke: $f from the daemon differs from the one-shot CLI" >&2
        exit 1
    fi
done
echo 'serve smoke: daemon artifacts byte-identical to the one-shot CLI'
# SIGKILL the daemon (no clean shutdown): the content-addressed store
# must survive, the stale socket file must be reclaimed on restart, and
# every run must then be served warm-from-store (live=0).
kill -9 "$sv_pid" 2>/dev/null || true
wait "$sv_pid" 2>/dev/null || true
"$exp_bin" serve --socket "$sv_dir/sock" --store "$sv_dir/store" --quiet \
    >"$sv_dir/serve2.log" 2>&1 &
sv_pid=$!
i=0
while ! grep -q '^serve: listening ' "$sv_dir/serve2.log" 2>/dev/null && [ "$i" -lt 200 ]; do
    sleep 0.1
    i=$((i + 1))
done
if ! grep -q '^serve: listening ' "$sv_dir/serve2.log"; then
    echo "serve smoke: daemon did not restart over the SIGKILLed store" >&2
    exit 1
fi
sv_out=$("$exp_bin" client --socket "$sv_dir/sock" fig12 --quick --out "$sv_dir/warm" --shutdown)
sv_line=$(printf '%s\n' "$sv_out" | grep '^serve: name=fig12 ')
echo "$sv_line"
case "$sv_line" in
    *" live=0 "*) ;;
    *)
        echo "serve smoke: restarted daemon re-simulated instead of serving from the store" >&2
        exit 1 ;;
esac
case "$sv_line" in
    *"warm_store=0")
        echo "serve smoke: restarted daemon reported no warm-store hits" >&2
        exit 1 ;;
esac
for f in fig12.txt fig12.json; do
    if ! cmp -s "$sv_dir/oneshot/$f" "$sv_dir/warm/$f"; then
        echo "serve smoke: warm-from-store $f differs from the one-shot CLI" >&2
        exit 1
    fi
done
wait "$sv_pid" 2>/dev/null || true
echo 'serve smoke: store survived SIGKILL; warm-from-store artifacts byte-identical'
rm -rf "$sv_dir"

echo 'verify: all gates green'
